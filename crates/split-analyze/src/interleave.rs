//! Bounded exhaustive-interleaving checker for the lock-free telemetry
//! primitives.
//!
//! `split-telemetry`'s hot-path metrics (`Counter`, `Gauge`, `Histogram`)
//! are wait-free atomics; their correctness argument is "every mutation is
//! a single RMW, so any interleaving linearizes". This module *checks*
//! that argument instead of trusting it: the primitives' operations are
//! modeled as sequences of atomic steps over shared cells, and a
//! depth-first explorer enumerates **every** interleaving of the modeled
//! threads (loom-style, but hand-rolled — the container has no registry
//! access), asserting the invariant at each completed execution.
//!
//! Invariant catalog (DESIGN.md §9):
//! * `SA201` — lost update: the final state misses an increment some
//!   thread performed (non-linearizable mutation)
//! * `SA202` — a snapshot observed a counter moving backwards
//! * `SA203` — merge result depends on merge order
//! * `SA204` — profile-cache dedup violation: a candidate measured more
//!   than once, or `misses ≠` distinct candidates, under some
//!   interleaving of the modeled `ProfileCache::profile` callers
//!
//! The step language deliberately includes two *racy* composite
//! operations (`LoadAccum`/`StoreAccum` — a read-modify-write torn into a
//! separate load and store) so the checker can be demonstrated to catch
//! the bug class it exists for; the real primitives never use them.
//!
//! Branching steps (`CasOrJump`, `JumpIfEq`, `Jump`, all forward-only)
//! extend the language far enough to model `profiler::ProfileCache`'s
//! claim-then-measure protocol: the winner of the compare-and-swap claim
//! measures and publishes, losers take the hit path. A *racy* variant
//! (check-then-measure without a claim — the pre-fix cache) exists as a
//! negative fixture proving the checker catches double measurement.

use crate::diag::{Diagnostic, Report};

/// One atomic step of a modeled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `cell.fetch_add(delta, Relaxed)` — wrapping, like the real counter.
    FetchAdd {
        /// Shared cell index.
        cell: usize,
        /// Added value.
        delta: u64,
    },
    /// `cell.fetch_max(val, Relaxed)`.
    FetchMax {
        /// Shared cell index.
        cell: usize,
        /// Candidate maximum.
        val: u64,
    },
    /// `cell.fetch_min(val, Relaxed)`.
    FetchMin {
        /// Shared cell index.
        cell: usize,
        /// Candidate minimum.
        val: u64,
    },
    /// `cell.store(val, Relaxed)`.
    Store {
        /// Shared cell index.
        cell: usize,
        /// Stored value.
        val: u64,
    },
    /// `cell.load(Relaxed)` appended to the thread's observation log.
    Load {
        /// Shared cell index.
        cell: usize,
    },
    /// **Racy**: load `cell` into the thread-local register (first half of
    /// a torn read-modify-write). Only used by negative fixtures.
    LoadAccum {
        /// Shared cell index.
        cell: usize,
    },
    /// **Racy**: store `register + delta` back to `cell` (second half of
    /// the torn read-modify-write). Only used by negative fixtures.
    StoreAccum {
        /// Shared cell index.
        cell: usize,
        /// Added value.
        delta: u64,
    },
    /// `cell.compare_exchange(expect, set)` as one atomic step: on success
    /// fall through to the next step, on failure jump (forward) to
    /// `orelse`. Models claiming a `Pending` slot under the shard lock.
    CasOrJump {
        /// Shared cell index.
        cell: usize,
        /// Expected current value.
        expect: u64,
        /// Value stored on success.
        set: u64,
        /// Forward jump target (step index) on failure.
        orelse: usize,
    },
    /// Load `cell` and jump (forward) to `target` when it equals `val`,
    /// else fall through. One atomic step — models a locked check.
    JumpIfEq {
        /// Shared cell index.
        cell: usize,
        /// Compared value.
        val: u64,
        /// Forward jump target (step index) on equality.
        target: usize,
    },
    /// Unconditional forward jump to `target` (step index).
    Jump {
        /// Forward jump target (step index).
        target: usize,
    },
}

/// A little machine: shared cells plus per-thread step programs.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Initial shared-cell values.
    pub cells: Vec<u64>,
    /// One step program per modeled thread.
    pub threads: Vec<Vec<Step>>,
}

/// The final state of one completed interleaving, handed to the checker.
#[derive(Debug)]
pub struct FinalState<'a> {
    /// Shared cells after every thread ran to completion.
    pub cells: &'a [u64],
    /// Per-thread observation logs (values seen by `Load` steps, in
    /// program order).
    pub logs: &'a [Vec<u64>],
}

/// Result of exploring a machine.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Complete interleavings enumerated.
    pub interleavings: u64,
    /// True when `limit` stopped the search before exhaustion.
    pub truncated: bool,
    /// Checker messages from violating interleavings (capped at 8).
    pub violations: Vec<String>,
}

/// Exhaustively enumerate every interleaving of `machine`'s threads (up
/// to `limit` complete executions) and run `check` on each final state.
/// `check` returns `Some(description)` to flag a violation.
pub fn explore(
    machine: &Machine,
    limit: u64,
    check: &dyn Fn(&FinalState) -> Option<String>,
) -> ExploreOutcome {
    struct Dfs<'a> {
        threads: &'a [Vec<Step>],
        cells: Vec<u64>,
        pcs: Vec<usize>,
        regs: Vec<u64>,
        logs: Vec<Vec<u64>>,
        leaves: u64,
        limit: u64,
        truncated: bool,
        violations: Vec<String>,
        check: &'a dyn Fn(&FinalState) -> Option<String>,
    }

    impl Dfs<'_> {
        fn run(&mut self) {
            if self.leaves >= self.limit {
                self.truncated = true;
                return;
            }
            let mut any = false;
            for t in 0..self.threads.len() {
                let pc = self.pcs[t];
                if pc >= self.threads[t].len() {
                    continue;
                }
                any = true;
                // Apply the step, remembering exactly what to undo. Each
                // arm also yields the next program counter — `pc + 1`
                // except for the (forward-only) branching steps.
                let step = self.threads[t][pc];
                let (old_cell, old_reg, logged, next_pc) = match step {
                    Step::FetchAdd { cell, delta } => {
                        let old = self.cells[cell];
                        self.cells[cell] = old.wrapping_add(delta);
                        (Some((cell, old)), None, false, pc + 1)
                    }
                    Step::FetchMax { cell, val } => {
                        let old = self.cells[cell];
                        self.cells[cell] = old.max(val);
                        (Some((cell, old)), None, false, pc + 1)
                    }
                    Step::FetchMin { cell, val } => {
                        let old = self.cells[cell];
                        self.cells[cell] = old.min(val);
                        (Some((cell, old)), None, false, pc + 1)
                    }
                    Step::Store { cell, val } => {
                        let old = self.cells[cell];
                        self.cells[cell] = val;
                        (Some((cell, old)), None, false, pc + 1)
                    }
                    Step::Load { cell } => {
                        self.logs[t].push(self.cells[cell]);
                        (None, None, true, pc + 1)
                    }
                    Step::LoadAccum { cell } => {
                        let old = self.regs[t];
                        self.regs[t] = self.cells[cell];
                        (None, Some(old), false, pc + 1)
                    }
                    Step::StoreAccum { cell, delta } => {
                        let old = self.cells[cell];
                        self.cells[cell] = self.regs[t].wrapping_add(delta);
                        (Some((cell, old)), None, false, pc + 1)
                    }
                    Step::CasOrJump {
                        cell,
                        expect,
                        set,
                        orelse,
                    } => {
                        debug_assert!(orelse > pc, "jumps must be forward-only");
                        let old = self.cells[cell];
                        if old == expect {
                            self.cells[cell] = set;
                            (Some((cell, old)), None, false, pc + 1)
                        } else {
                            (None, None, false, orelse)
                        }
                    }
                    Step::JumpIfEq { cell, val, target } => {
                        debug_assert!(target > pc, "jumps must be forward-only");
                        if self.cells[cell] == val {
                            (None, None, false, target)
                        } else {
                            (None, None, false, pc + 1)
                        }
                    }
                    Step::Jump { target } => {
                        debug_assert!(target > pc, "jumps must be forward-only");
                        (None, None, false, target)
                    }
                };
                self.pcs[t] = next_pc;
                self.run();
                self.pcs[t] = pc;
                if let Some((cell, old)) = old_cell {
                    self.cells[cell] = old;
                }
                if let Some(old) = old_reg {
                    self.regs[t] = old;
                }
                if logged {
                    self.logs[t].pop();
                }
                if self.truncated {
                    return;
                }
            }
            if !any {
                // Every thread ran to completion: one full interleaving.
                self.leaves += 1;
                if self.violations.len() < 8 {
                    let state = FinalState {
                        cells: &self.cells,
                        logs: &self.logs,
                    };
                    if let Some(msg) = (self.check)(&state) {
                        self.violations.push(msg);
                    }
                }
            }
        }
    }

    let n = machine.threads.len();
    let mut dfs = Dfs {
        threads: &machine.threads,
        cells: machine.cells.clone(),
        pcs: vec![0; n],
        regs: vec![0; n],
        logs: vec![Vec::new(); n],
        leaves: 0,
        limit: limit.max(1),
        truncated: false,
        violations: Vec::new(),
        check,
    };
    dfs.run();
    ExploreOutcome {
        interleavings: dfs.leaves,
        truncated: dfs.truncated,
        violations: dfs.violations,
    }
}

/// The correct model of `Counter::add`: one `FetchAdd` per increment.
/// `threads × adds_per_thread` increments of distinct odd deltas.
pub fn counter_machine(threads: usize, adds_per_thread: usize) -> (Machine, u64) {
    let mut total = 0u64;
    let programs: Vec<Vec<Step>> = (0..threads)
        .map(|t| {
            (0..adds_per_thread)
                .map(|i| {
                    let delta = (t * adds_per_thread + i) as u64 * 2 + 1;
                    total += delta;
                    Step::FetchAdd { cell: 0, delta }
                })
                .collect()
        })
        .collect();
    (
        Machine {
            cells: vec![0],
            threads: programs,
        },
        total,
    )
}

/// A **deliberately broken** counter whose increment is a torn
/// load/store pair. Exists so tests can prove the explorer catches lost
/// updates (`SA201`); the real `Counter` never does this.
pub fn racy_counter_machine(threads: usize, adds_per_thread: usize) -> (Machine, u64) {
    let (correct, total) = counter_machine(threads, adds_per_thread);
    let programs = correct
        .threads
        .iter()
        .map(|prog| {
            prog.iter()
                .flat_map(|s| match *s {
                    Step::FetchAdd { cell, delta } => {
                        vec![Step::LoadAccum { cell }, Step::StoreAccum { cell, delta }]
                    }
                    other => vec![other],
                })
                .collect()
        })
        .collect();
    (
        Machine {
            cells: vec![0],
            threads: programs,
        },
        total,
    )
}

/// Model of `Histogram::record(v)`: bucket count, total count, sum,
/// max, and min are each a single RMW on their own cell.
///
/// Cells: `0..n_buckets` bucket counts, then count, sum, max, min.
pub fn histogram_machine(
    values: &[u64],
    n_buckets: usize,
    bucket_of: &dyn Fn(u64) -> usize,
) -> Machine {
    let count = n_buckets;
    let sum = n_buckets + 1;
    let max = n_buckets + 2;
    let min = n_buckets + 3;
    let mut cells = vec![0u64; n_buckets + 4];
    cells[min] = u64::MAX; // empty-histogram sentinel, like the real one
    let threads = values
        .iter()
        .map(|&v| {
            vec![
                Step::FetchAdd {
                    cell: bucket_of(v),
                    delta: 1,
                },
                Step::FetchAdd {
                    cell: count,
                    delta: 1,
                },
                Step::FetchAdd {
                    cell: sum,
                    delta: v,
                },
                Step::FetchMax { cell: max, val: v },
                Step::FetchMin { cell: min, val: v },
            ]
        })
        .collect();
    Machine { cells, threads }
}

/// A modeled `ProfileCache` with `keys` distinct candidates: cell layout
/// plus the thread programs, so checkers can find the invariant cells.
///
/// Cells: `0..keys` per-key slot state (0 = empty, 1 = pending,
/// 2 = ready), `keys..2·keys` per-key measurement counts, then `misses`
/// and `hits`.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// The step machine (threads calling `profile` on their key).
    pub machine: Machine,
    /// Distinct keys (candidates).
    pub keys: usize,
    /// Total modeled calls across all keys.
    pub calls: usize,
}

impl CacheModel {
    fn cells(keys: usize) -> Vec<u64> {
        // states + measure counts + misses + hits
        vec![0; 2 * keys + 2]
    }

    fn measured(&self, st: &FinalState, key: usize) -> u64 {
        st.cells[self.keys + key]
    }

    fn misses(&self, st: &FinalState) -> u64 {
        st.cells[2 * self.keys]
    }

    fn hits(&self, st: &FinalState) -> u64 {
        st.cells[2 * self.keys + 1]
    }

    /// The SA204 invariant over a final state: every key measured exactly
    /// once, `misses ==` distinct keys, and hits account for the rest.
    pub fn check(&self, st: &FinalState) -> Option<String> {
        for k in 0..self.keys {
            let m = self.measured(st, k);
            if m != 1 {
                return Some(format!(
                    "candidate {k} measured {m} times (must be exactly 1)"
                ));
            }
            if st.cells[k] != 2 {
                return Some(format!("candidate {k} never published Ready"));
            }
        }
        let (misses, hits) = (self.misses(st), self.hits(st));
        if misses != self.keys as u64 {
            return Some(format!(
                "misses = {misses} ≠ {} distinct candidates — \
                 stats()/len() invariant broken",
                self.keys
            ));
        }
        if hits != (self.calls - self.keys) as u64 {
            return Some(format!(
                "hits = {hits} ≠ {} deduplicated calls",
                self.calls - self.keys
            ));
        }
        None
    }
}

/// Model of the fixed `ProfileCache::profile`: claim the key's slot with
/// a CAS under the shard lock, measure outside it, publish `Ready`; a
/// caller that loses the claim takes the hit path (blocking on the
/// in-flight condvar mutates nothing shared, so it is not modeled).
///
/// `calls_per_key[k]` threads run the program against key `k`.
pub fn dedup_cache_machine(calls_per_key: &[usize]) -> CacheModel {
    let keys = calls_per_key.len();
    let (misses, hits) = (2 * keys, 2 * keys + 1);
    let mut threads = Vec::new();
    for (k, &calls) in calls_per_key.iter().enumerate() {
        for _ in 0..calls {
            threads.push(vec![
                // Double-checked claim: only one caller wins the CAS.
                Step::CasOrJump {
                    cell: k,
                    expect: 0,
                    set: 1,
                    orelse: 5,
                },
                // profile_split, outside the shard lock.
                Step::FetchAdd {
                    cell: keys + k,
                    delta: 1,
                },
                Step::FetchAdd {
                    cell: misses,
                    delta: 1,
                },
                // Publish Ready (and notify waiters).
                Step::Store { cell: k, val: 2 },
                Step::Jump { target: 6 },
                // Pending or Ready found: deduplicated, count a hit.
                Step::FetchAdd {
                    cell: hits,
                    delta: 1,
                },
            ]);
        }
    }
    CacheModel {
        machine: Machine {
            cells: CacheModel::cells(keys),
            threads,
        },
        keys,
        calls: calls_per_key.iter().sum(),
    }
}

/// The **pre-fix** cache as a negative fixture: check the map, then
/// measure outside the lock *without claiming the key* — two callers can
/// both see "absent" and both measure. `check` must catch this (SA204).
pub fn racy_cache_machine(calls_per_key: &[usize]) -> CacheModel {
    let keys = calls_per_key.len();
    let (misses, hits) = (2 * keys, 2 * keys + 1);
    let mut threads = Vec::new();
    for (k, &calls) in calls_per_key.iter().enumerate() {
        for _ in 0..calls {
            threads.push(vec![
                // Lookup without a claim: hit only when already Ready.
                Step::JumpIfEq {
                    cell: k,
                    val: 2,
                    target: 5,
                },
                Step::FetchAdd {
                    cell: keys + k,
                    delta: 1,
                },
                Step::FetchAdd {
                    cell: misses,
                    delta: 1,
                },
                Step::Store { cell: k, val: 2 },
                Step::Jump { target: 6 },
                Step::FetchAdd {
                    cell: hits,
                    delta: 1,
                },
            ]);
        }
    }
    CacheModel {
        machine: Machine {
            cells: CacheModel::cells(keys),
            threads,
        },
        keys,
        calls: calls_per_key.iter().sum(),
    }
}

/// Run the profile-cache scenario suite (SA204): every interleaving of
/// racing `ProfileCache::profile` callers, each bounded by `limit`.
/// Returns the report plus the total interleavings exhausted.
pub fn check_cache_interleavings(limit: u64) -> (Report, u64) {
    let mut report = Report::new();
    let mut explored = 0u64;

    // --- Three callers race one candidate: worst contention on a key. ---
    let model = dedup_cache_machine(&[3]);
    let out = explore(&model.machine, limit, &|st: &FinalState| model.check(st));
    explored += out.interleavings;
    push_violations(&mut report, "SA204", "ProfileCache same-key race", &out);

    // --- Two keys, mixed contention: dedup must stay per-key. ---
    let model = dedup_cache_machine(&[2, 1]);
    let out = explore(&model.machine, limit, &|st: &FinalState| model.check(st));
    explored += out.interleavings;
    push_violations(&mut report, "SA204", "ProfileCache cross-key", &out);

    (report, explored)
}

/// Run the standard telemetry scenario suite: every interleaving of the
/// modeled `Counter`, `Gauge`, `Histogram::record`, snapshot, and
/// `Histogram::merge` operations, each bounded by `limit` interleavings.
/// Returns the report plus the total number of interleavings exhausted.
pub fn check_telemetry_interleavings(limit: u64) -> (Report, u64) {
    let mut report = Report::new();
    let mut explored = 0u64;

    // --- Counter linearizability (SA201): 3 threads × 4 increments. ---
    let (machine, expected) = counter_machine(3, 4);
    let out = explore(&machine, limit, &|st: &FinalState| {
        (st.cells[0] != expected).then(|| {
            format!(
                "final counter value {} ≠ sum of increments {expected}",
                st.cells[0]
            )
        })
    });
    explored += out.interleavings;
    push_violations(&mut report, "SA201", "Counter::add", &out);

    // --- Gauge (signed add modeled two's-complement): 2×3 mixed deltas. ---
    let deltas: [i64; 6] = [5, -3, 7, -2, 11, -6];
    let net: i64 = deltas.iter().sum();
    let machine = Machine {
        cells: vec![0],
        threads: deltas
            .chunks(3)
            .map(|c| {
                c.iter()
                    .map(|&d| Step::FetchAdd {
                        cell: 0,
                        delta: d as u64,
                    })
                    .collect()
            })
            .collect(),
    };
    let out = explore(&machine, limit, &|st: &FinalState| {
        (st.cells[0] as i64 != net)
            .then(|| format!("final gauge value {} ≠ net delta {net}", st.cells[0] as i64))
    });
    explored += out.interleavings;
    push_violations(&mut report, "SA201", "Gauge::add", &out);

    // --- Histogram::record linearizability: 3 concurrent records. ---
    let values = [3u64, 900, 17];
    let machine = histogram_machine(&values, 3, &|v| {
        if v < 10 {
            0
        } else if v < 100 {
            1
        } else {
            2
        }
    });
    let out = explore(&machine, limit, &|st: &FinalState| {
        let (count, sum, max, min) = (st.cells[3], st.cells[4], st.cells[5], st.cells[6]);
        if st.cells[0] != 1 || st.cells[1] != 1 || st.cells[2] != 1 {
            return Some(format!("bucket counts {:?} ≠ [1, 1, 1]", &st.cells[0..3]));
        }
        if count != 3 || sum != 920 || max != 900 || min != 3 {
            return Some(format!(
                "count/sum/max/min = {count}/{sum}/{max}/{min} ≠ 3/920/900/3"
            ));
        }
        None
    });
    explored += out.interleavings;
    push_violations(&mut report, "SA201", "Histogram::record", &out);

    // --- Snapshot monotonicity (SA202): reader vs writer. ---
    let machine = Machine {
        cells: vec![0],
        threads: vec![
            vec![Step::FetchAdd { cell: 0, delta: 1 }; 4],
            vec![Step::Load { cell: 0 }; 4],
        ],
    };
    let out = explore(&machine, limit, &|st: &FinalState| {
        let log = &st.logs[1];
        log.windows(2)
            .any(|w| w[1] < w[0])
            .then(|| format!("snapshot sequence {log:?} is not monotone non-decreasing"))
    });
    explored += out.interleavings;
    push_violations(&mut report, "SA202", "Counter snapshot", &out);

    // --- Merge order-independence (SA203): two sources into one dest. ---
    // Source A: count 2, sum 30, max 20, min 10; source B: count 3,
    // sum 600, max 500, min 1. Cells: count, sum, max, min.
    let merge_prog = |count: u64, sum: u64, max: u64, min: u64| {
        vec![
            Step::FetchAdd {
                cell: 0,
                delta: count,
            },
            Step::FetchAdd {
                cell: 1,
                delta: sum,
            },
            Step::FetchMax { cell: 2, val: max },
            Step::FetchMin { cell: 3, val: min },
        ]
    };
    let machine = Machine {
        cells: vec![0, 0, 0, u64::MAX],
        threads: vec![merge_prog(2, 30, 20, 10), merge_prog(3, 600, 500, 1)],
    };
    let out = explore(&machine, limit, &|st: &FinalState| {
        (st.cells != [5, 630, 500, 1]).then(|| {
            format!(
                "merged count/sum/max/min = {:?} ≠ [5, 630, 500, 1] — \
                 merge result depends on interleaving",
                st.cells
            )
        })
    });
    explored += out.interleavings;
    push_violations(&mut report, "SA203", "Histogram::merge", &out);

    (report, explored)
}

fn push_violations(report: &mut Report, code: &str, context: &str, out: &ExploreOutcome) {
    for v in &out.violations {
        report.push(
            Diagnostic::error(code, context, v.clone())
                .with_help("a lock-free mutation is not linearizable as modeled"),
        );
    }
    if out.truncated {
        report.push(Diagnostic::note(
            code,
            context,
            format!(
                "search truncated after {} interleavings — not exhaustive",
                out.interleavings
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_machine_exhausts_expected_count() {
        // 3 threads × 4 steps: multinomial(12; 4,4,4) = 34650.
        let (machine, expected) = counter_machine(3, 4);
        let out = explore(&machine, u64::MAX, &|st: &FinalState| {
            (st.cells[0] != expected).then(|| "lost update".to_string())
        });
        assert_eq!(out.interleavings, 34_650);
        assert!(!out.truncated);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn racy_counter_loses_updates() {
        let (machine, expected) = racy_counter_machine(2, 2);
        let out = explore(&machine, u64::MAX, &|st: &FinalState| {
            (st.cells[0] != expected).then(|| format!("final {} ≠ {expected}", st.cells[0]))
        });
        assert!(
            !out.violations.is_empty(),
            "the torn RMW must lose updates in some interleaving"
        );
    }

    #[test]
    fn limit_truncates_and_reports() {
        let (machine, _) = counter_machine(3, 3);
        let out = explore(&machine, 10, &|_: &FinalState| None);
        assert!(out.truncated);
        assert!(out.interleavings <= 10);
    }

    #[test]
    fn telemetry_suite_is_clean_and_exhaustive() {
        let (report, explored) = check_telemetry_interleavings(u64::MAX);
        assert!(report.is_empty(), "{}", report.render_text());
        // The acceptance bar: ≥ 10⁴ interleavings actually exhausted.
        assert!(explored >= 10_000, "only {explored} interleavings");
    }

    #[test]
    fn cas_claim_admits_exactly_one_winner() {
        // Two threads CAS the same cell 0→1; in every interleaving exactly
        // one wins and bumps the win counter (cell 1).
        let prog = vec![
            Step::CasOrJump {
                cell: 0,
                expect: 0,
                set: 1,
                orelse: 2,
            },
            Step::FetchAdd { cell: 1, delta: 1 },
        ];
        let machine = Machine {
            cells: vec![0, 0],
            threads: vec![prog.clone(), prog],
        };
        let out = explore(&machine, u64::MAX, &|st: &FinalState| {
            (st.cells[1] != 1).then(|| format!("{} CAS winners ≠ 1", st.cells[1]))
        });
        assert!(!out.truncated);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn jump_if_eq_branches_both_ways() {
        // Thread 1 stores 7 into cell 0; thread 2 branches on it. Across
        // interleavings both the taken and the fall-through path occur, so
        // cell 1 ends at 1 (taken) in some runs and 2 (not taken) in
        // others — never anything else.
        let machine = Machine {
            cells: vec![0, 0],
            threads: vec![
                vec![Step::Store { cell: 0, val: 7 }],
                vec![
                    Step::JumpIfEq {
                        cell: 0,
                        val: 7,
                        target: 2,
                    },
                    Step::FetchAdd { cell: 1, delta: 1 },
                    Step::FetchAdd { cell: 1, delta: 1 },
                ],
            ],
        };
        let out = explore(&machine, u64::MAX, &|st: &FinalState| {
            (st.cells[1] != 1 && st.cells[1] != 2)
                .then(|| format!("impossible branch count {}", st.cells[1]))
        });
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Collect outcomes to prove both paths are reached.
        let seen = std::cell::RefCell::new(std::collections::BTreeSet::new());
        explore(&machine, u64::MAX, &|st: &FinalState| {
            seen.borrow_mut().insert(st.cells[1]);
            None
        });
        assert_eq!(
            seen.into_inner().into_iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn dedup_cache_model_is_race_free() {
        // The fixed claim-then-measure protocol: no interleaving of three
        // same-key callers double-measures or breaks misses == len().
        let model = dedup_cache_machine(&[3]);
        let out = explore(&model.machine, u64::MAX, &|st: &FinalState| model.check(st));
        assert!(!out.truncated);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.interleavings > 100, "only {}", out.interleavings);
    }

    #[test]
    fn racy_cache_fixture_double_measures() {
        // The pre-fix check-then-measure cache: two callers racing one key
        // must double-measure in some interleaving, and the diagnostic is
        // SA204.
        let model = racy_cache_machine(&[2]);
        let out = explore(&model.machine, u64::MAX, &|st: &FinalState| model.check(st));
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("measured 2 times")),
            "racy cache must double-measure somewhere: {:?}",
            out.violations
        );
        let mut report = Report::new();
        push_violations(&mut report, "SA204", "racy profile cache", &out);
        assert!(!report.with_code("SA204").is_empty());
    }

    #[test]
    fn cache_suite_is_clean_and_exhaustive() {
        let (report, explored) = check_cache_interleavings(u64::MAX);
        assert!(report.is_empty(), "{}", report.render_text());
        assert!(explored >= 1_000, "only {explored} interleavings");
    }

    #[test]
    fn racy_suite_diagnostic_is_sa201() {
        let (machine, expected) = racy_counter_machine(2, 2);
        let out = explore(&machine, u64::MAX, &|st: &FinalState| {
            (st.cells[0] != expected).then(|| "lost update".to_string())
        });
        let mut report = Report::new();
        push_violations(&mut report, "SA201", "racy counter", &out);
        assert!(!report.with_code("SA201").is_empty());
    }
}
