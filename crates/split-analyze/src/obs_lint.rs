//! Attribution analyzer (`SA3xx`): verifies that critical-path
//! attribution is *exact* for a simulation result.
//!
//! `split-obs` claims each completed request's latency decomposes into
//! queue / compute / transfer / stall / sched components that sum back
//! to the end-to-end latency. This analyzer re-derives the attribution
//! from the lifecycle recording and checks the claim against the
//! engine's completion records:
//!
//! * `SA301` — components do not sum to the request's e2e latency
//!   within 1 ns ([`split_obs::SUM_TOLERANCE_US`]);
//! * `SA302` — a component is negative (the span partition is broken,
//!   e.g. overlapping blocks for one request);
//! * `SA303` — a completed request has no attribution at all (its
//!   lifecycle events are missing or unpaired).

use crate::diag::{Diagnostic, Report};
use sched::SimResult;
use split_obs::{attribute, SUM_TOLERANCE_US};
use std::collections::BTreeMap;

/// Lint critical-path attribution for one simulation result.
pub fn lint_attribution(result: &SimResult) -> Report {
    let mut report = Report::new();
    let attrs = attribute(&result.recorder);
    let by_req: BTreeMap<u64, &split_obs::Attribution> = attrs.iter().map(|a| (a.req, a)).collect();

    for a in &attrs {
        let ctx = format!("request {} ({})", a.req, a.model);
        let residual = a.residual_us();
        if residual.abs() > SUM_TOLERANCE_US {
            report.push(
                Diagnostic::error(
                    "SA301",
                    ctx.clone(),
                    format!(
                        "components sum to {:.4} µs but e2e is {:.4} µs (residual {:+.4} µs, \
                         tolerance ±{} µs)",
                        a.components_sum_us(),
                        a.e2e_us(),
                        residual,
                        SUM_TOLERANCE_US
                    ),
                )
                .with_help(
                    "the request's spans no longer partition [arrival, completion]; check for \
                     missing BlockEnd events or blocks recorded outside the request interval",
                ),
            );
        }
        for (name, v) in [
            ("queue", a.queue_us),
            ("compute", a.compute_us),
            ("transfer", a.transfer_us),
            ("stall", a.stall_us),
            ("sched", a.sched_us),
        ] {
            if v < -1e-9 {
                report.push(Diagnostic::error(
                    "SA302",
                    ctx.clone(),
                    format!("negative {name} component: {v:.4} µs"),
                ));
            }
        }
    }

    for c in &result.completions {
        if !by_req.contains_key(&c.id) {
            report.push(
                Diagnostic::error(
                    "SA303",
                    format!("request {} ({})", c.id, c.model),
                    "completed request has no latency attribution",
                )
                .with_help(
                    "the lifecycle recording lacks the request's arrival or completion event \
                     (ring-buffer eviction loses attribution; use an unbounded recorder when \
                     analyzing)",
                ),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{simulate, ModelRuntime, ModelTable, Policy};
    use split_telemetry::{Event, Recorder};
    use workload::Arrival;

    fn sim() -> SimResult {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(
            ModelRuntime::split("long", 1, 60_000.0, vec![22_000.0; 3])
                .with_transfer_bytes(vec![1 << 20, 1 << 20]),
        );
        let arrivals: Vec<Arrival> = (0..20)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "long" } else { "short" }).into(),
                arrival_us: i as f64 * 9_000.0,
            })
            .collect();
        simulate(&Policy::Split(Default::default()), &arrivals, &t)
    }

    #[test]
    fn clean_simulation_is_clean() {
        let report = lint_attribution(&sim());
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn missing_lifecycle_events_raise_sa303() {
        let mut result = sim();
        // Drop the recording: every completion loses its attribution.
        result.recorder = Recorder::new();
        let report = lint_attribution(&result);
        assert_eq!(report.diagnostics.len(), result.completions.len());
        assert!(report.diagnostics.iter().all(|d| d.code == "SA303"));
    }

    #[test]
    fn broken_partition_raises_sa301() {
        let mut result = sim();
        // A rogue block outside the request interval breaks the
        // telescoping sum for request 0.
        let mut rec = Recorder::new();
        for e in result.recorder.events() {
            rec.record(e.clone());
        }
        rec.record(Event::BlockStart {
            req: 0,
            block: 99,
            stream: 7,
            t_us: 10_000_000.0,
        });
        rec.record(Event::BlockEnd {
            req: 0,
            block: 99,
            stream: 7,
            t_us: 10_050_000.0,
        });
        result.recorder = rec;
        let report = lint_attribution(&result);
        assert!(
            report.diagnostics.iter().any(|d| d.code == "SA301"),
            "{}",
            report.render_text()
        );
    }
}
