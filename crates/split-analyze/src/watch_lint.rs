//! Drift-watch lints (`SA501`–`SA504`, DESIGN.md §15).
//!
//! The streaming drift watch rests on four invariants, each re-proven
//! here against freshly generated artifacts instead of trusted:
//!
//! * `SA501` — the quantile sketch's relative-error guarantee: for
//!   every distribution shape and quantile probed, the sketch estimate
//!   must be within `α` relative error of the exact sorted-data
//!   quantile under the same rank convention (`rank = max(1, ⌈q·n⌉)`).
//! * `SA502` — exact sample conservation: replaying a real simulation
//!   through [`split_watch::DriftWatch`] must account for every
//!   arrival, completion, violation, and drop — the per-window counters
//!   re-sum to the feed totals, and the feed totals match the
//!   schedule's own counts.
//! * `SA503` — merge order-independence: merging the same sketches in
//!   any order or grouping must produce bit-identical state (the
//!   commutativity/associativity contract that makes per-window,
//!   per-model sketches safely roll up).
//! * `SA504` — detector replay determinism: stepping a fresh
//!   [`split_watch::DetectorBank`] over the same window frames twice
//!   must emit byte-identical regime events, and the surge fixture must
//!   actually fire (a silent detector is a broken sensor).

use crate::diag::{Diagnostic, Report};
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use sched::{simulate, Policy};
use split_core::SplitPlan;
use split_runtime::Deployment;
use split_telemetry::sketch::QuantileSketch;
use split_watch::{DetectCfg, DetectorBank, WatchCfg, WindowFrame, WindowRing};
use workload::{RequestTrace, Scenario};

/// SplitMix64 — the deterministic sample generator for the sketch
/// audits (no `rand` dependency; the stream is a pure function of the
/// seed).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The distribution shapes SA501/SA503 probe: name plus a sample
/// stream derived from the seed.
fn sample_streams() -> Vec<(&'static str, Vec<u64>)> {
    const N: usize = 4096;
    let stream = |seed: u64, f: &dyn Fn(u64) -> u64| -> Vec<u64> {
        let mut s = seed;
        (0..N).map(|_| f(splitmix64(&mut s))).collect()
    };
    vec![
        ("uniform", stream(0xA11CE, &|r| r % 1_000_000)),
        ("heavy-tail", stream(0xB0B, &|r| (r % 4096).pow(3))),
        (
            "with-zeros",
            stream(0xCAFE, &|r| if r % 10 == 0 { 0 } else { r % 50_000 }),
        ),
        ("constant", vec![777; N]),
    ]
}

/// Exact `q`-quantile of a sorted multiset under the sketch's rank
/// convention (`rank = max(1, ⌈q·n⌉)`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).max(1).min(n);
    sorted[rank - 1]
}

/// `SA501` — sketch estimates stay within the advertised `α` relative
/// error of exact sorted quantiles, across distribution shapes,
/// accuracies, and probe quantiles.
pub fn lint_sketch_accuracy() -> (Report, usize) {
    let mut report = Report::new();
    let mut checked = 0usize;
    let probes = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
    for (name, samples) in sample_streams() {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for alpha in [0.01, 0.05] {
            let mut sketch = QuantileSketch::new(alpha);
            for &v in &samples {
                sketch.record(v);
            }
            for q in probes {
                checked += 1;
                let exact = exact_quantile(&sorted, q);
                let est = sketch.quantile(q);
                let ok = if exact == 0 {
                    est == 0.0
                } else {
                    (est - exact as f64).abs() <= (alpha + 1e-9) * exact as f64
                };
                if !ok {
                    report.push(
                        Diagnostic::error(
                            "SA501",
                            format!("sketch(α={alpha}, {name}) q={q}"),
                            format!(
                                "estimate {est} strays beyond the α={alpha} relative-error \
                                 bound from the exact quantile {exact}"
                            ),
                        )
                        .with_help(
                            "the bucket index or representative-value formula no longer \
                             matches the DDSketch γ-bound derivation",
                        ),
                    );
                }
            }
        }
    }
    (report, checked)
}

/// `SA502` — replaying a real schedule through the drift watch
/// conserves every sample: window counters re-sum to the feed totals
/// and the feed totals match the simulation's own counts.
pub fn lint_window_conservation(scenario: usize, requests: usize) -> (Report, usize) {
    let mut report = Report::new();
    let dev = DeviceConfig::default();
    // A vanilla short-model deployment keeps this stage GA-free (fast)
    // while still exercising the full arrival→completion replay path.
    let id = ModelId::GoogLeNet;
    let graph = id.build_calibrated(&dev);
    let mut deployment = Deployment::new();
    deployment.deploy_plan(&SplitPlan::vanilla(&graph, &dev));
    let mut sc = Scenario::table2(scenario);
    sc.requests = requests;
    let trace = RequestTrace::generate(sc, &[id.info().name]);
    let result = simulate(
        &Policy::Split(Default::default()),
        &trace.arrivals,
        deployment.table(),
    );
    let drift = result.drift(WatchCfg {
        window_us: 2_000_000.0,
        ..WatchCfg::default()
    });

    if !drift.conservation_holds() {
        report.push(
            Diagnostic::error(
                "SA502",
                "drift replay",
                "the drift report's own conservation check failed: per-window counters \
                 do not re-sum to the feed totals",
            )
            .with_help("a window rotation is dropping or double-counting samples"),
        );
    }
    // Independent re-sum from the serialized rows (don't trust the
    // report's helper to audit itself).
    let sums = drift.windows.iter().fold((0u64, 0u64, 0u64, 0u64), |a, w| {
        (
            a.0 + w.total.completions,
            a.1 + w.total.violations,
            a.2 + w.total.arrivals,
            a.3 + w.total.drops,
        )
    });
    let fed = (
        drift.fed.completions,
        drift.fed.violations,
        drift.fed.arrivals,
        drift.fed.drops,
    );
    if sums != fed {
        report.push(
            Diagnostic::error(
                "SA502",
                "drift replay",
                format!(
                    "window totals {sums:?} (completions, violations, arrivals, drops) \
                     disagree with feed totals {fed:?}"
                ),
            )
            .with_help("a closed frame was lost between the ring and the report"),
        );
    }
    if drift.fed.arrivals != trace.arrivals.len() as u64
        || drift.fed.completions != result.completions.len() as u64
    {
        report.push(
            Diagnostic::error(
                "SA502",
                "drift replay",
                format!(
                    "feed totals ({} arrivals, {} completions) disagree with the \
                     schedule ({} arrivals, {} completions)",
                    drift.fed.arrivals,
                    drift.fed.completions,
                    trace.arrivals.len(),
                    result.completions.len(),
                ),
            )
            .with_help("the lifecycle replay is skipping recorder events"),
        );
    }
    (report, 3)
}

/// `SA503` — sketch merges are commutative and associative: any merge
/// order or grouping over the same inputs yields bit-identical state.
pub fn lint_merge_determinism() -> (Report, usize) {
    let mut report = Report::new();
    let mut checked = 0usize;
    let streams = sample_streams();
    let build = |samples: &[u64]| {
        let mut s = QuantileSketch::new(0.01);
        for &v in samples {
            s.record(v);
        }
        s
    };
    let bits = |s: &QuantileSketch| serde_json::to_string(s).expect("sketch serializes");
    let merged = |parts: &[&QuantileSketch]| {
        let mut out = QuantileSketch::new(0.01);
        for p in parts {
            out.merge(p);
        }
        out
    };

    let a = build(&streams[0].1);
    let b = build(&streams[1].1);
    let c = build(&streams[2].1);

    checked += 1;
    if bits(&merged(&[&a, &b])) != bits(&merged(&[&b, &a])) {
        report.push(
            Diagnostic::error(
                "SA503",
                "sketch merge",
                "merge is not commutative: a∪b and b∪a serialize differently",
            )
            .with_help("bucket accumulation must be pure integer += keyed by index"),
        );
    }
    checked += 1;
    let mut left = merged(&[&a, &b]);
    left.merge(&c);
    let mut right = c.clone();
    right.merge(&b);
    let mut outer = a.clone();
    outer.merge(&right);
    if bits(&left) != bits(&outer) {
        report.push(
            Diagnostic::error(
                "SA503",
                "sketch merge",
                "merge is not associative: (a∪b)∪c and a∪(c∪b) serialize differently",
            )
            .with_help("bucket accumulation must be pure integer += keyed by index"),
        );
    }
    // Sharding invariance: one sketch over the whole stream must equal
    // four shard sketches merged in reverse order.
    checked += 1;
    let whole = build(&streams[0].1);
    let shards: Vec<QuantileSketch> = streams[0].1.chunks(1024).map(build).collect();
    let mut resharded = QuantileSketch::new(0.01);
    for s in shards.iter().rev() {
        resharded.merge(s);
    }
    if bits(&whole) != bits(&resharded) {
        report.push(
            Diagnostic::error(
                "SA503",
                "sketch merge",
                "recording a stream whole and merging its shards disagree",
            )
            .with_help("record() and merge() must land samples in identical buckets"),
        );
    }
    (report, checked)
}

/// Deterministic window-frame fixture for `SA504`: twenty calm windows
/// then ten with an 8× arrival surge and 15× latency shift.
fn surge_frames() -> Vec<WindowFrame> {
    let mut ring = WindowRing::new(1_000.0, 64, 0.01);
    let mut frames = Vec::new();
    for k in 0..30u64 {
        let (n, e2e) = if k < 20 { (8, 2_000.0) } else { (64, 30_000.0) };
        for i in 0..n {
            let t = k as f64 * 1_000.0 + 1.0 + i as f64 * 10.0;
            frames.extend(ring.observe_arrival(t, "victim"));
            frames.extend(ring.observe_completion(t, "victim", e2e, e2e > 8_000.0));
        }
    }
    frames.extend(ring.finalize());
    frames
}

/// `SA504` — stepping a fresh detector bank over the same frames twice
/// emits byte-identical regime events, and the surge fixture fires.
pub fn lint_detector_replay() -> (Report, usize) {
    let mut report = Report::new();
    let frames = surge_frames();
    let run = || {
        let mut bank = DetectorBank::new(DetectCfg::default());
        let events: Vec<_> = frames.iter().flat_map(|f| bank.step(f)).collect();
        serde_json::to_string(&events).expect("events serialize")
    };
    let first = run();
    let second = run();
    if first != second {
        report.push(
            Diagnostic::error(
                "SA504",
                "detector replay",
                "two replays of the same window frames emitted different regime events",
            )
            .with_help(
                "detector state must be a pure fold over the frame series — no \
                 ambient randomness, time, or iteration-order dependence",
            ),
        );
    }
    if first == "[]" {
        report.push(
            Diagnostic::error(
                "SA504",
                "detector replay",
                "the 8× surge fixture fired no regime event, so replay determinism \
                 could not be meaningfully verified",
            )
            .with_help("detector thresholds or warmup drifted; the sensor is silent"),
        );
    }
    (report, 2)
}

/// Run every drift-watch lint; returns the merged report and the number
/// of individual checks performed (surfaced by `analyze` logs).
pub fn lint_watch(scenario: usize, requests: usize) -> (Report, usize) {
    let mut report = Report::new();
    let mut checked = 0usize;
    for (r, n) in [
        lint_sketch_accuracy(),
        lint_window_conservation(scenario, requests),
        lint_merge_determinism(),
        lint_detector_replay(),
    ] {
        report.merge(r);
        checked += n;
    }
    (report, checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_watch_lints_are_clean() {
        let (report, checked) = lint_watch(3, 80);
        assert_eq!(report.error_count(), 0, "{}", report.render_text());
        assert_eq!(report.warning_count(), 0, "{}", report.render_text());
        assert!(checked > 60, "expected many probes, got {checked}");
    }

    #[test]
    fn surge_fixture_is_potent() {
        let frames = surge_frames();
        assert!(frames.len() >= 30);
        let mut bank = DetectorBank::new(DetectCfg::default());
        let events: Vec<_> = frames.iter().flat_map(|f| bank.step(f)).collect();
        assert!(!events.is_empty(), "surge must fire at least one detector");
    }

    #[test]
    fn exact_quantile_uses_sketch_rank_convention() {
        let sorted = [1u64, 2, 3, 4];
        assert_eq!(exact_quantile(&sorted, 0.0), 1);
        assert_eq!(exact_quantile(&sorted, 0.5), 2);
        assert_eq!(exact_quantile(&sorted, 0.51), 3);
        assert_eq!(exact_quantile(&sorted, 1.0), 4);
    }
}
