//! The unified diagnostic model shared by all three analyzers.
//!
//! Every invariant violation is reported as a rustc-style [`Diagnostic`]:
//! a severity, a stable code from the invariant catalog (DESIGN.md §9), a
//! span-ish `context` naming the artifact location ("plan(resnet50) cut
//! 2", "stream 0 @ 1234µs", "request 17"), the violation message, and an
//! optional `help` suggesting the fix. Diagnostics accumulate in a
//! [`Report`] that renders as text or JSON and decides the process exit
//! (`--deny-warnings` promotes warnings to failures).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; never fails an analysis run.
    Note,
    /// Suspicious but not provably wrong; fails under `--deny-warnings`.
    Warning,
    /// A broken invariant; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from an analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable invariant code, e.g. `"SA102"` (catalog in DESIGN.md §9).
    pub code: String,
    /// Span-ish location inside the analyzed artifact.
    pub context: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer knows.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: &str, context: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: code.to_string(),
            context: context.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(
        code: &str,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, context, message)
        }
    }

    /// Build a note diagnostic.
    pub fn note(code: &str, context: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, context, message)
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, "  --> {}", self.context)?;
        if let Some(help) = &self.help {
            write!(f, "\n  = help: {help}")?;
        }
        Ok(())
    }
}

/// A batch of diagnostics from one analyzer run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty (clean) report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Total number of findings, all severities.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when nothing at all was reported.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when the analysis should fail the process: any error, or any
    /// warning under `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.error_count() > 0 || (deny_warnings && self.warning_count() > 0)
    }

    /// All findings with the given code (fixture tests key off this).
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Render every finding as rustc-style text, most severe first, plus
    /// a trailing tally line.
    pub fn render_text(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
        let mut out = String::new();
        for d in sorted {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.error_count(),
            self.warning_count(),
            self.count(Severity::Note),
        ));
        out
    }

    /// Render as a JSON array of diagnostics.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.diagnostics).expect("diagnostics serialize")
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Report {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_tallies_and_failure_policy() {
        let mut r = Report::new();
        assert!(!r.fails(true));
        r.push(Diagnostic::warning("SA005", "plan(x)", "uneven"));
        assert!(!r.fails(false));
        assert!(r.fails(true));
        r.push(Diagnostic::error("SA003", "plan(x)", "gap").with_help("regenerate"));
        assert!(r.fails(false));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.with_code("SA003").len(), 1);
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let mut r = Report::new();
        r.push(
            Diagnostic::error("SA101", "stream 0 @ 12.0µs", "spans overlap")
                .with_help("check the policy's dispatch loop"),
        );
        let text = r.render_text();
        assert!(text.contains("error[SA101]: spans overlap"));
        assert!(text.contains("--> stream 0 @ 12.0µs"));
        assert!(text.contains("= help: check the policy's dispatch loop"));
        assert!(text.contains("1 error(s), 0 warning(s), 0 note(s)"));
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report::new();
        r.push(Diagnostic::note(
            "SA006",
            "plan(y)",
            "no declared transfers",
        ));
        let json = r.render_json();
        let back: Vec<Diagnostic> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r.diagnostics);
    }

    #[test]
    fn errors_sort_before_warnings_in_text() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("SA005", "a", "w"));
        r.push(Diagnostic::error("SA001", "b", "e"));
        let text = r.render_text();
        let epos = text.find("error[SA001]").unwrap();
        let wpos = text.find("warning[SA005]").unwrap();
        assert!(epos < wpos);
    }
}
