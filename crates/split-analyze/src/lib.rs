#![warn(missing_docs)]
//! # split-analyze — static verification of SPLIT's artifacts
//!
//! Every stage of the SPLIT pipeline produces an artifact with invariants
//! the paper's claims rest on: the offline GA emits [`split_core::SplitPlan`]s
//! that must actually partition the model graph evenly (§3.3); the online
//! policies emit schedules that must preempt only at block boundaries
//! (§3.4) and lose no requests; the telemetry layer mutates lock-free
//! counters whose correctness argument is linearizability. This crate
//! *checks* those invariants instead of trusting them, with three
//! analyzers sharing one rustc-style diagnostic model:
//!
//! * [`plan_lint`] — lints a split plan against the operator graph it was
//!   derived from (`SA0xx` codes);
//! * [`sched_lint`] — replays a simulation result and checks scheduling
//!   invariants, plus a determinism auditor that runs each policy twice
//!   and structurally diffs the results (`SA1xx`);
//! * [`interleave`] — a weak-memory stateless model checker (reads-from
//!   enumeration under the C11 release/acquire axioms, dynamic
//!   partial-order reduction, vector-clock race detection) over
//!   [`memmodel`] machines of the telemetry primitives, the profiler's
//!   deduplicating `ProfileCache`, and the `FlightRing` seqlock
//!   (`SA2xx`);
//! * [`par_audit`] — runs the offline GA at one pool worker and at eight
//!   and structurally (bitwise) diffs the outcomes, extending the
//!   `SA106` determinism audit to the thread pool; plus the `SA107`
//!   cost-table audit proving memoized candidate profiles are
//!   bit-identical to the direct arithmetic;
//! * [`obs_lint`] — re-derives `split-obs` critical-path attribution
//!   from the lifecycle recording and checks it is exact: components
//!   sum to e2e within 1 ns, no negative components, every completion
//!   attributed (`SA3xx`);
//! * [`forensics_lint`] — verifies incident bundles from
//!   `split-forensics`: root-cause classifications reconcile with the
//!   exact decomposition, the tail-sampling invariant holds (every
//!   violating request captured), the flight ring reads causally, and
//!   the verdict aggregates its outliers exactly (`SA4xx`);
//! * [`cluster_lint`] — verifies fleet runs from `split-cluster`:
//!   request conservation across shards, replica-placement discipline,
//!   and per-device QoS feasibility (`SA6xx`);
//! * [`watch_lint`] — re-proves the drift-watch invariants: the
//!   quantile sketch's relative-error bound against exact sorted data,
//!   window sample conservation on a replayed schedule, sketch-merge
//!   commutativity/associativity (bit-identical state), and detector
//!   replay determinism (`SA5xx`).
//!
//! [`suite::run_suite`] runs all of these over regenerated artifacts —
//! this is what `split-cli analyze` and the figure harnesses call. The
//! full invariant catalog lives in DESIGN.md §9.

pub mod cluster_lint;
pub mod diag;
pub mod forensics_lint;
pub mod interleave;
pub mod memmodel;
pub mod obs_lint;
pub mod par_audit;
pub mod plan_lint;
pub mod sched_lint;
pub mod suite;
pub mod watch_lint;

pub use cluster_lint::lint_cluster;
pub use diag::{Diagnostic, Report, Severity};
pub use forensics_lint::{lint_bundle, lint_bundles};
pub use interleave::{
    catalog, check_models, explore, negative_fixtures, ExploreCfg, ExploreOutcome, MachineStats,
    McBudget, ModelSpec,
};
pub use memmodel::{Machine, MemOrd, Operand, RmwOp, Step};
pub use obs_lint::lint_attribution;
pub use par_audit::{audit_costtable_equivalence, audit_parallel_determinism};
pub use plan_lint::{lint_plan, PlanLintCfg};
pub use sched_lint::{audit_determinism, lint_schedule, ScheduleLintCfg};
pub use suite::{run_suite, SuiteCfg, SuiteOutcome};
pub use watch_lint::lint_watch;
