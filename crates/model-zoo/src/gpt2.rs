//! GPT-2 (small, 12 layers): the paper's text-generation model (Table 1:
//! 2534 operators, 20.4 ms isolated, classed *short*). ONNX exports of
//! transformer attention decompose into hundreds of small nodes — per-head
//! reshape/transpose/matmul/softmax chains plus mask preprocessing — which
//! is exactly how the node count reaches the thousands while the end-to-end
//! latency stays low: most nodes are tiny or shape-only.
//!
//! The decomposition below reproduces that structure: an 11-node prolog
//! (embeddings + attention-mask plumbing), 12 transformer blocks of 210
//! nodes each (18 block-level + 12 heads × 16), and a 3-node epilog
//! (final layer norm, LM head, softmax) — 2534 nodes total, matching
//! Table 1 exactly.

use dnn_graph::{Graph, GraphBuilder, OpKind, Tap, TensorShape};

/// Sequence length used for profiling (fixed-shape export).
pub const SEQ: u64 = 32;
/// Hidden width.
pub const HIDDEN: u64 = 768;
/// Attention heads per layer.
pub const HEADS: u64 = 12;
/// Width of one head.
pub const HEAD_DIM: u64 = HIDDEN / HEADS;
/// Transformer layers.
pub const LAYERS: usize = 12;
/// Vocabulary size.
pub const VOCAB: u64 = 50257;

/// Build GPT-2 small with a fixed `SEQ`-token context.
pub fn build() -> Graph {
    let mut b = GraphBuilder::new(
        "gpt2",
        TensorShape::with_dtype([1, SEQ], dnn_graph::DType::I32),
    );
    let ids = b.source();

    // ---- Prolog: embeddings + attention-mask plumbing (11 nodes).
    let hidden = TensorShape::seq(SEQ, HIDDEN);
    let ids2 = b.raw(
        OpKind::Reshape,
        "ids_reshape",
        0,
        ids.shape.clone(),
        0,
        &[&ids],
    );
    let tok = b.raw(
        OpKind::Embedding,
        "wte",
        SEQ * HIDDEN,
        hidden.clone(),
        VOCAB * HIDDEN * 4,
        &[&ids2],
    );
    let pos = b.raw(
        OpKind::Embedding,
        "wpe",
        SEQ * HIDDEN,
        hidden.clone(),
        1024 * HIDDEN * 4,
        &[&ids2],
    );
    let emb = b.add(&tok, &pos);
    let emb = b.raw(
        OpKind::Identity,
        "emb_dropout",
        0,
        emb.shape.clone(),
        0,
        &[&emb],
    );
    let mask_shape = TensorShape::new([1, 1, SEQ, SEQ]);
    let m1 = b.raw(
        OpKind::Reshape,
        "mask_unsqueeze",
        0,
        mask_shape.clone(),
        0,
        &[&ids2],
    );
    let m2 = b.raw(
        OpKind::Identity,
        "mask_cast",
        0,
        mask_shape.clone(),
        0,
        &[&m1],
    );
    let m3 = b.raw(
        OpKind::Add,
        "mask_sub",
        SEQ * SEQ,
        mask_shape.clone(),
        0,
        &[&m2],
    );
    let m4 = b.raw(
        OpKind::Mul,
        "mask_scale",
        SEQ * SEQ,
        mask_shape.clone(),
        0,
        &[&m3],
    );
    let mask = b.raw(
        OpKind::Identity,
        "mask_cast2",
        0,
        mask_shape.clone(),
        0,
        &[&m4],
    );
    let mut x = b.raw(OpKind::Identity, "emb_cast", 0, hidden.clone(), 0, &[&emb]);

    // ---- 12 transformer blocks (210 nodes each).
    for layer in 0..LAYERS {
        x = block(&mut b, &x, &mask, layer);
    }

    // ---- Epilog (3 nodes).
    let lnf = b.layernorm(&x);
    let logits = b.raw(
        OpKind::MatMul,
        "lm_head",
        2 * SEQ * HIDDEN * VOCAB,
        TensorShape::seq(SEQ, VOCAB),
        0, // tied to wte
        &[&lnf],
    );
    let _ = b.softmax(&logits);
    b.finish()
}

/// One transformer block: 18 block-level nodes + 12 heads × 16 nodes = 210.
fn block(b: &mut GraphBuilder, x: &Tap, mask: &Tap, layer: usize) -> Tap {
    let l = layer;
    let hidden = TensorShape::seq(SEQ, HIDDEN);

    let ln1 = b.layernorm(x);
    let qkv_mm = b.raw(
        OpKind::MatMul,
        format!("h{l}.attn.c_attn"),
        2 * SEQ * HIDDEN * 3 * HIDDEN,
        TensorShape::seq(SEQ, 3 * HIDDEN),
        (HIDDEN * 3 * HIDDEN) * 4,
        &[&ln1],
    );
    let qkv = b.raw(
        OpKind::Add,
        format!("h{l}.attn.c_attn_bias"),
        SEQ * 3 * HIDDEN,
        qkv_mm.shape.clone(),
        3 * HIDDEN * 4,
        &[&qkv_mm],
    );
    let qkv_split = b.raw(
        OpKind::Reshape,
        format!("h{l}.attn.split_qkv"),
        0,
        qkv.shape.clone(),
        0,
        &[&qkv],
    );
    let mask_slice = b.raw(
        OpKind::Reshape,
        format!("h{l}.attn.mask_slice"),
        0,
        mask.shape.clone(),
        0,
        &[mask],
    );

    let head_taps: Vec<Tap> = (0..HEADS)
        .map(|h| attention_head(b, &qkv_split, &mask_slice, l, h))
        .collect();
    let head_refs: Vec<&Tap> = head_taps.iter().collect();
    let merged = {
        // Heads produce [1, SEQ, HEAD_DIM]; concat along the feature dim.
        let cat = b.raw(
            OpKind::Concat,
            format!("h{l}.attn.merge"),
            SEQ * HIDDEN,
            hidden.clone(),
            0,
            &head_refs,
        );
        cat
    };
    let proj_mm = b.raw(
        OpKind::MatMul,
        format!("h{l}.attn.c_proj"),
        2 * SEQ * HIDDEN * HIDDEN,
        hidden.clone(),
        HIDDEN * HIDDEN * 4,
        &[&merged],
    );
    let proj = b.raw(
        OpKind::Add,
        format!("h{l}.attn.c_proj_bias"),
        SEQ * HIDDEN,
        hidden.clone(),
        HIDDEN * 4,
        &[&proj_mm],
    );
    let proj = b.raw(
        OpKind::Identity,
        format!("h{l}.attn.dropout"),
        0,
        hidden.clone(),
        0,
        &[&proj],
    );
    let attn_out = b.add(&proj, x);

    let ln2 = b.layernorm(&attn_out);
    let fc_mm = b.raw(
        OpKind::MatMul,
        format!("h{l}.mlp.c_fc"),
        2 * SEQ * HIDDEN * 4 * HIDDEN,
        TensorShape::seq(SEQ, 4 * HIDDEN),
        HIDDEN * 4 * HIDDEN * 4,
        &[&ln2],
    );
    let fc = b.raw(
        OpKind::Add,
        format!("h{l}.mlp.c_fc_bias"),
        SEQ * 4 * HIDDEN,
        fc_mm.shape.clone(),
        4 * HIDDEN * 4,
        &[&fc_mm],
    );
    let act = b.gelu(&fc);
    let proj2_mm = b.raw(
        OpKind::MatMul,
        format!("h{l}.mlp.c_proj"),
        2 * SEQ * 4 * HIDDEN * HIDDEN,
        hidden.clone(),
        4 * HIDDEN * HIDDEN * 4,
        &[&act],
    );
    let proj2 = b.raw(
        OpKind::Add,
        format!("h{l}.mlp.c_proj_bias"),
        SEQ * HIDDEN,
        hidden.clone(),
        HIDDEN * 4,
        &[&proj2_mm],
    );
    let proj2 = b.raw(
        OpKind::Identity,
        format!("h{l}.mlp.dropout"),
        0,
        hidden.clone(),
        0,
        &[&proj2],
    );
    b.add(&proj2, &attn_out)
}

/// One attention head: 16 nodes, mirroring the ONNX export
/// (slice/transpose chains, scaled QK^T, mask add, softmax with casts,
/// attention dropout, context matmul, inverse transpose/reshape).
fn attention_head(b: &mut GraphBuilder, qkv: &Tap, mask: &Tap, l: usize, h: u64) -> Tap {
    let head = TensorShape::new([1, SEQ, HEAD_DIM]);
    let scores = TensorShape::new([1, SEQ, SEQ]);
    let p = format!("h{l}.attn.head{h}");

    let rq = b.raw(
        OpKind::Reshape,
        format!("{p}.reshape_q"),
        0,
        head.clone(),
        0,
        &[qkv],
    );
    let tq = b.raw(
        OpKind::Reshape,
        format!("{p}.transpose_q"),
        0,
        head.clone(),
        0,
        &[&rq],
    );
    let rk = b.raw(
        OpKind::Reshape,
        format!("{p}.reshape_k"),
        0,
        head.clone(),
        0,
        &[qkv],
    );
    let tk = b.raw(
        OpKind::Reshape,
        format!("{p}.transpose_k"),
        0,
        head.clone(),
        0,
        &[&rk],
    );
    let rv = b.raw(
        OpKind::Reshape,
        format!("{p}.reshape_v"),
        0,
        head.clone(),
        0,
        &[qkv],
    );
    let tv = b.raw(
        OpKind::Reshape,
        format!("{p}.transpose_v"),
        0,
        head.clone(),
        0,
        &[&rv],
    );

    let qk = b.raw(
        OpKind::MatMul,
        format!("{p}.qk"),
        2 * SEQ * SEQ * HEAD_DIM,
        scores.clone(),
        0,
        &[&tq, &tk],
    );
    let scaled = b.raw(
        OpKind::Mul,
        format!("{p}.scale"),
        SEQ * SEQ,
        scores.clone(),
        0,
        &[&qk],
    );
    let masked = b.raw(
        OpKind::Add,
        format!("{p}.mask"),
        SEQ * SEQ,
        scores.clone(),
        0,
        &[&scaled, mask],
    );
    let c1 = b.raw(
        OpKind::Identity,
        format!("{p}.cast1"),
        0,
        scores.clone(),
        0,
        &[&masked],
    );
    let sm = b.softmax(&c1);
    let c2 = b.raw(
        OpKind::Identity,
        format!("{p}.cast2"),
        0,
        scores.clone(),
        0,
        &[&sm],
    );
    let dp = b.raw(
        OpKind::Identity,
        format!("{p}.dropout"),
        0,
        scores.clone(),
        0,
        &[&c2],
    );
    let ctx = b.raw(
        OpKind::MatMul,
        format!("{p}.ctx"),
        2 * SEQ * SEQ * HEAD_DIM,
        head.clone(),
        0,
        &[&dp, &tv],
    );
    let tctx = b.raw(
        OpKind::Reshape,
        format!("{p}.transpose_ctx"),
        0,
        head.clone(),
        0,
        &[&ctx],
    );
    b.raw(
        OpKind::Reshape,
        format!("{p}.reshape_ctx"),
        0,
        head.clone(),
        0,
        &[&tctx],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_matches_table1() {
        assert_eq!(build().op_count(), 2534);
    }

    #[test]
    fn params_in_published_ballpark() {
        // GPT-2 small: ~124 M params plus the 38.6 M tied embedding counted
        // once; expect 115-170 M * 4 bytes.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((110.0..170.0).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn most_nodes_are_bookkeeping() {
        // The ONNX-export flavour: a large share of nodes do no arithmetic.
        let g = build();
        let free = g.ops().iter().filter(|o| !o.kind.is_compute()).count();
        assert!(
            free * 3 > g.op_count(),
            "free nodes: {free} of {}",
            g.op_count()
        );
    }

    #[test]
    fn validates() {
        assert!(build().validate().is_ok());
    }
}
