//! EfficientNet-B0 (EfficientNet-Lite style export): profiling-set model
//! the paper files under object detection (§3.1, likely EfficientDet's
//! backbone). Sixteen MBConv blocks with squeeze-excitation.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build EfficientNet-B0.
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("efficientnet_b0", TensorShape::chw(3, 224, 224));
    let x = b.source();

    let c = b.conv(&x, 32, 3, 2, 1);
    let mut x = b.sigmoid(&c); // SiLU stand-in (swish)

    // (expand ratio, channels, repeats, stride, kernel)
    let cfg: &[(u64, u64, usize, u64, u64)] = &[
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for &(expand, ch, repeats, stride0, k) in cfg {
        for i in 0..repeats {
            let stride = if i == 0 { stride0 } else { 1 };
            x = mbconv(&mut b, &x, expand, ch, stride, k);
        }
    }

    let head = b.conv(&x, 1280, 1, 1, 0);
    let hs = b.sigmoid(&head);
    let g = b.gavgpool(&hs);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 1000);
    b.finish()
}

/// MBConv: expand 1×1 + swish, depthwise k×k + swish, SE (gavg, reduce,
/// swish, expand, sigmoid, mul), project 1×1, residual add when shapes
/// allow.
fn mbconv(b: &mut GraphBuilder, x: &Tap, expand: u64, out_ch: u64, stride: u64, k: u64) -> Tap {
    let in_ch = x.shape.dims[1];
    let mid = in_ch * expand;

    let mut t = x.clone();
    if expand != 1 {
        let e = b.conv(&t, mid, 1, 1, 0);
        t = b.sigmoid(&e);
    }
    let dw = b.dwconv(&t, k, stride, k / 2);
    let dws = b.sigmoid(&dw);

    // Squeeze-excitation at ratio 0.25 of input channels.
    let se_ch = (in_ch / 4).max(1);
    let sq = b.gavgpool(&dws);
    let red = b.conv(&sq, se_ch, 1, 1, 0);
    let reds = b.sigmoid(&red);
    let exp = b.conv(&reds, mid, 1, 1, 0);
    let gate = b.sigmoid(&exp);
    let gated = b.mul(&dws, &gate);

    let proj = b.conv(&gated, out_ch, 1, 1, 0);
    if stride == 1 && out_ch == in_ch {
        b.add(&proj, x)
    } else {
        proj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::OpKind;

    #[test]
    fn op_count_plausible() {
        let n = build().op_count();
        assert!((150..220).contains(&n), "got {n}");
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~5.3 M params.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((4.0..7.0).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn has_se_gates() {
        let g = build();
        let muls = g.ops().iter().filter(|o| o.kind == OpKind::Mul).count();
        assert_eq!(muls, 16, "one SE gate per MBConv block");
    }
}
