#![warn(missing_docs)]
//! # model-zoo — synthetic architectures standing in for the ONNX model zoo
//!
//! The paper profiles 11 models from the ONNX zoo (§3.1) and evaluates on
//! five of them (Table 1). We cannot ship ONNX binaries, so each model is
//! reconstructed as an architecturally-faithful operator graph: the real
//! layer structure (VGG stacks, ResNet bottlenecks, inception modules, fire
//! modules, MBConv blocks, transformer blocks with per-head attention ops),
//! real shapes, and real FLOP counts.
//!
//! Because our cost model is not the authors' Jetson Nano, each benchmark
//! model carries a *time-scale calibration* so its isolated end-to-end
//! latency matches Table 1 exactly (see [`calibrate`]); the *relative*
//! per-operator profile — which is what splitting decisions depend on —
//! comes from the architecture itself.
//!
//! Operator counts are matched to the paper's Table 1 where given
//! (YOLOv2 84, GoogLeNet 142, ResNet50 122, VGG19 44, GPT-2 2534),
//! including the bookkeeping nodes (pads, reshapes, casts) that real ONNX
//! exports contain.

pub mod alexnet;
pub mod calibrate;
pub mod densenet;
pub mod efficientnet;
pub mod googlenet;
pub mod gpt2;
pub mod mobilenet;
pub mod registry;
pub mod resnet;
pub mod shufflenet;
pub mod squeezenet;
pub mod vgg;
pub mod yolo;

pub use calibrate::calibrate_to_ms;
pub use registry::{benchmark_models, profiling_models, Domain, LengthClass, ModelId, ModelInfo};
