//! VGG-19: the paper's archetypal *long* model (Table 1: 44 operators,
//! 67.5 ms isolated). Sixteen 3×3 convolutions in five stacks, three fully
//! connected layers. Its time profile is extremely front-heavy — the first
//! two stacks run on 224×224 and 112×112 activations — which is why its
//! evenly-timed cut point sits well before the operator-index midpoint
//! (paper Figure 2b).

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build VGG-19 (ONNX-zoo style: ReLU after every conv/fc, softmax head).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("vgg19", TensorShape::chw(3, 224, 224));
    let mut x = b.source();

    let stacks: &[(usize, u64)] = &[(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)];
    for &(convs, ch) in stacks {
        for _ in 0..convs {
            x = conv_relu(&mut b, &x, ch);
        }
        x = b.maxpool(&x, 2, 2, 0);
    }

    let f = b.flatten(&x);
    let fc6 = b.dense(&f, 4096);
    let r6 = b.relu(&fc6);
    let fc7 = b.dense(&r6, 4096);
    let r7 = b.relu(&fc7);
    let fc8 = b.dense(&r7, 1000);
    let _ = b.softmax(&fc8);
    b.finish()
}

fn conv_relu(b: &mut GraphBuilder, x: &Tap, ch: u64) -> Tap {
    let c = b.conv(x, ch, 3, 1, 1);
    b.relu(&c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_matches_table1() {
        assert_eq!(build().op_count(), 44);
    }

    #[test]
    fn flops_in_published_ballpark() {
        // VGG-19 forward pass is famously ~19.6 GFLOPs (2x the ~9.8 GMACs).
        let g = build();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((35.0..45.0).contains(&gflops), "got {gflops} GFLOPs");
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~143.7 M parameters * 4 bytes.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((140.0..148.0).contains(&mparams), "got {mparams} M params");
    }

    #[test]
    fn front_ops_produce_larger_activations() {
        let g = build();
        // First conv output (64x224x224) dwarfs the pre-classifier one.
        assert!(g.op(0).output_bytes() > g.op(36).output_bytes() * 8);
    }
}
