//! SqueezeNet v1.1: profiling-set model (paper §3.1). Eight *fire modules*
//! (squeeze 1×1 → parallel expand 1×1 / 3×3 → concat) — small, short, and
//! branchy.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build SqueezeNet v1.1.
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("squeezenet_v1.1", TensorShape::chw(3, 224, 224));
    let x = b.source();

    let c1 = b.conv(&x, 64, 3, 2, 0);
    let r1 = b.relu(&c1);
    let mut x = b.maxpool(&r1, 3, 2, 0);

    // (squeeze, expand) channel pairs; pools after fire2/3 and fire4/5
    // groups per v1.1.
    x = fire(&mut b, &x, 16, 64);
    x = fire(&mut b, &x, 16, 64);
    x = b.maxpool(&x, 3, 2, 0);
    x = fire(&mut b, &x, 32, 128);
    x = fire(&mut b, &x, 32, 128);
    x = b.maxpool(&x, 3, 2, 0);
    x = fire(&mut b, &x, 48, 192);
    x = fire(&mut b, &x, 48, 192);
    x = fire(&mut b, &x, 64, 256);
    x = fire(&mut b, &x, 64, 256);

    let c10 = b.conv(&x, 1000, 1, 1, 0);
    let r10 = b.relu(&c10);
    let g = b.gavgpool(&r10);
    let _ = b.softmax(&g);
    b.finish()
}

/// Fire module: 7 operators.
fn fire(b: &mut GraphBuilder, x: &Tap, squeeze: u64, expand: u64) -> Tap {
    let s = b.conv(x, squeeze, 1, 1, 0);
    let sr = b.relu(&s);
    let e1 = b.conv(&sr, expand, 1, 1, 0);
    let e1r = b.relu(&e1);
    let e3 = b.conv(&sr, expand, 3, 1, 1);
    let e3r = b.relu(&e3);
    b.concat(&[&e1r, &e3r])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count() {
        // 3 stem + 8 fires x 7 + 2 pools + 4 head = 65.
        assert_eq!(build().op_count(), 65);
    }

    #[test]
    fn tiny_parameter_count() {
        // ~1.2 M params is SqueezeNet's whole point.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!(mparams < 2.0, "got {mparams}");
    }

    #[test]
    fn validates() {
        assert!(build().validate().is_ok());
    }
}
