//! ResNet-50: the paper's second *long* model (Table 1: 122 operators,
//! 28.35 ms isolated) and the main subject of the splitting experiments
//! (Figures 2 and 5, Table 3).
//!
//! ONNX-zoo ResNet-50 v1 has batch norm folded into the convolutions, which
//! is how the graph lands on exactly 122 nodes:
//! stem (conv, relu, maxpool) + 16 bottlenecks (7 ops each, 8 for the four
//! stage-leading blocks with a projection shortcut) + gavgpool + flatten +
//! fc = 3 + 12·7 + 4·8 + 3 = 122.
//!
//! The residual skip connections matter for splitting: a cut placed inside
//! a bottleneck must carry *both* the main-path tensor and the skip tensor
//! across the boundary, so sensible cuts gravitate to block boundaries —
//! emergent behaviour, not a hand-coded rule.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build ResNet-50 (BN folded, ONNX zoo style).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("resnet50", TensorShape::chw(3, 224, 224));
    let x = b.source();

    // Stem.
    let c = b.conv(&x, 64, 7, 2, 3);
    let r = b.relu(&c);
    let mut x = b.maxpool(&r, 3, 2, 1);

    // Stages: (blocks, mid channels, out channels, first stride).
    let stages: &[(usize, u64, u64, u64)] = &[
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for &(blocks, mid, out, stride0) in stages {
        for i in 0..blocks {
            let stride = if i == 0 { stride0 } else { 1 };
            x = bottleneck(&mut b, &x, mid, out, stride, i == 0);
        }
    }

    let g = b.gavgpool(&x);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 1000);
    b.finish()
}

/// One bottleneck: 1×1 reduce → 3×3 → 1×1 expand, plus identity or
/// projection shortcut.
fn bottleneck(
    b: &mut GraphBuilder,
    x: &Tap,
    mid: u64,
    out: u64,
    stride: u64,
    project: bool,
) -> Tap {
    let c1 = b.conv(x, mid, 1, 1, 0);
    let r1 = b.relu(&c1);
    let c2 = b.conv(&r1, mid, 3, stride, 1);
    let r2 = b.relu(&c2);
    let c3 = b.conv(&r2, out, 1, 1, 0);
    let shortcut = if project {
        b.conv(x, out, 1, stride, 0)
    } else {
        x.clone()
    };
    let s = b.add(&c3, &shortcut);
    b.relu(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_matches_table1() {
        assert_eq!(build().op_count(), 122);
    }

    #[test]
    fn flops_in_published_ballpark() {
        // ResNet-50 is ~4.1 GMACs ≈ 8.2 GFLOPs.
        let g = build();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((7.0..10.0).contains(&gflops), "got {gflops}");
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~25.6 M parameters.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((24.0..27.0).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn skip_connections_present() {
        let g = build();
        // Some node must consume a tensor produced >2 positions earlier
        // (the residual add).
        let has_skip = (0..g.op_count()).any(|v| g.inputs_of(v).iter().any(|&u| v - u > 4));
        assert!(has_skip);
    }

    #[test]
    fn mid_block_cut_carries_skip_tensor() {
        let g = build();
        // Position 5 is inside the first bottleneck (stem is ops 0..3).
        // The boundary must exceed the single main-path tensor because the
        // stem output is still live for the shortcut.
        let main_path_only = g.op(4).output_bytes();
        assert!(g.boundary_bytes(5) > main_path_only);
    }
}
