//! GoogLeNet (Inception v1): a *short* benchmark model (Table 1: 142
//! operators, 13.2 ms isolated). Nine inception modules of four parallel
//! branches each — a thoroughly non-chain DAG that stresses the boundary
//! accounting: cutting inside a module would strand up to four live
//! tensors.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Inception module channel spec: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5,
/// pool proj).
type Inception = (u64, u64, u64, u64, u64, u64);

/// Build GoogLeNet (ONNX zoo style, LRN modeled as a normalization op).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("googlenet", TensorShape::chw(3, 224, 224));
    let x = b.source();

    // Stem: conv7 - pool - lrn - conv1 - conv3 - lrn - pool.
    let c1 = b.conv(&x, 64, 7, 2, 3);
    let r1 = b.relu(&c1);
    let p1 = b.maxpool(&r1, 3, 2, 1);
    let n1 = b.batchnorm(&p1); // stands in for LRN
    let c2 = b.conv(&n1, 64, 1, 1, 0);
    let r2 = b.relu(&c2);
    let c3 = b.conv(&r2, 192, 3, 1, 1);
    let r3 = b.relu(&c3);
    let n2 = b.batchnorm(&r3); // LRN
    let mut x = b.maxpool(&n2, 3, 2, 1);

    let modules_3: &[Inception] = &[(64, 96, 128, 16, 32, 32), (128, 128, 192, 32, 96, 64)];
    for &m in modules_3 {
        x = inception(&mut b, &x, m);
    }
    x = b.maxpool(&x, 3, 2, 1);

    let modules_4: &[Inception] = &[
        (192, 96, 208, 16, 48, 64),
        (160, 112, 224, 24, 64, 64),
        (128, 128, 256, 24, 64, 64),
        (112, 144, 288, 32, 64, 64),
        (256, 160, 320, 32, 128, 128),
    ];
    for &m in modules_4 {
        x = inception(&mut b, &x, m);
    }
    x = b.maxpool(&x, 3, 2, 1);

    let modules_5: &[Inception] = &[(256, 160, 320, 32, 128, 128), (384, 192, 384, 48, 128, 128)];
    for &m in modules_5 {
        x = inception(&mut b, &x, m);
    }

    let g = b.gavgpool(&x);
    let f = b.flatten(&g);
    let fc = b.dense(&f, 1000);
    let _ = b.softmax(&fc);
    b.finish()
}

/// One inception module: 14 operators
/// (1x1+relu | 1x1+relu+3x3+relu | 1x1+relu+5x5+relu | pool+1x1+relu, concat).
fn inception(b: &mut GraphBuilder, x: &Tap, (c1, r3, c3, r5, c5, pp): Inception) -> Tap {
    let b1c = b.conv(x, c1, 1, 1, 0);
    let b1 = b.relu(&b1c);

    let b3r = b.conv(x, r3, 1, 1, 0);
    let b3rr = b.relu(&b3r);
    let b3c = b.conv(&b3rr, c3, 3, 1, 1);
    let b3 = b.relu(&b3c);

    let b5r = b.conv(x, r5, 1, 1, 0);
    let b5rr = b.relu(&b5r);
    let b5c = b.conv(&b5rr, c5, 5, 1, 2);
    let b5 = b.relu(&b5c);

    let p = b.maxpool(x, 3, 1, 1);
    let pc = b.conv(&p, pp, 1, 1, 0);
    let pb = b.relu(&pc);

    b.concat(&[&b1, &b3, &b5, &pb])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_matches_table1() {
        assert_eq!(build().op_count(), 142);
    }

    #[test]
    fn flops_in_published_ballpark() {
        // GoogLeNet is ~1.5 GMACs ≈ 3 GFLOPs.
        let g = build();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((2.0..4.5).contains(&gflops), "got {gflops}");
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~7 M (6.6 excluding aux heads, which ONNX inference graphs drop).
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((5.5..8.0).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn inception_modules_have_four_way_concat() {
        let g = build();
        let four_way = (0..g.op_count())
            .filter(|&v| g.inputs_of(v).len() == 4)
            .count();
        assert_eq!(four_way, 9, "nine inception concats expected");
    }
}
