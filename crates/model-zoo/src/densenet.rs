//! DenseNet-121: profiling-set model (paper §3.1). Dense connectivity means
//! *every* layer's output stays live to the end of its block — cutting
//! inside a dense block is brutally expensive, a stress test for the
//! boundary-bytes accounting.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

const GROWTH: u64 = 32;

/// Build DenseNet-121 (BN unfolded, as the ONNX zoo exports it).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("densenet121", TensorShape::chw(3, 224, 224));
    let x = b.source();

    let c = b.conv(&x, 64, 7, 2, 3);
    let n = b.batchnorm(&c);
    let r = b.relu(&n);
    let mut x = b.maxpool(&r, 3, 2, 1);

    let blocks = [6usize, 12, 24, 16];
    for (bi, &layers) in blocks.iter().enumerate() {
        x = dense_block(&mut b, &x, layers);
        if bi + 1 < blocks.len() {
            x = transition(&mut b, &x);
        }
    }

    let n = b.batchnorm(&x);
    let r = b.relu(&n);
    let g = b.gavgpool(&r);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 1000);
    b.finish()
}

/// One dense layer: bn-relu-conv1x1(4k) - bn-relu-conv3x3(k) - concat.
fn dense_layer(b: &mut GraphBuilder, x: &Tap) -> Tap {
    let n1 = b.batchnorm(x);
    let r1 = b.relu(&n1);
    let c1 = b.conv(&r1, 4 * GROWTH, 1, 1, 0);
    let n2 = b.batchnorm(&c1);
    let r2 = b.relu(&n2);
    let c3 = b.conv(&r2, GROWTH, 3, 1, 1);
    b.concat(&[x, &c3])
}

fn dense_block(b: &mut GraphBuilder, x: &Tap, layers: usize) -> Tap {
    let mut t = x.clone();
    for _ in 0..layers {
        t = dense_layer(b, &t);
    }
    t
}

/// Transition: bn-relu-conv1x1(half) - avgpool2.
fn transition(b: &mut GraphBuilder, x: &Tap) -> Tap {
    let n = b.batchnorm(x);
    let r = b.relu(&n);
    let half = x.shape.dims[1] / 2;
    let c = b.conv(&r, half, 1, 1, 0);
    b.avgpool(&c, 2, 2, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count() {
        // 4 stem + 58 layers x 7 + 3 transitions x 4 + 5 tail = 427.
        assert_eq!(build().op_count(), 427);
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~8 M params.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((6.5..9.5).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn dense_connectivity_inflates_boundaries() {
        let g = build();
        // A cut in the middle of the first dense block carries the running
        // concat (all previous layer outputs), so it exceeds the cut right
        // after the stem.
        let after_stem = g.boundary_bytes(4);
        let mid_block = g.boundary_bytes(25);
        assert!(
            mid_block > after_stem / 2,
            "stem {after_stem}, mid {mid_block}"
        );
    }
}
