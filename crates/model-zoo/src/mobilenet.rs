//! MobileNetV2: the eleventh profiling model (§3.1 says "11 typical deep
//! learning models" while naming ten; the ONNX model zoo's edge staple
//! MobileNetV2 fills the list, documented in DESIGN.md).

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build MobileNetV2 (1.0×, 224).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v2", TensorShape::chw(3, 224, 224));
    let x = b.source();

    let c = b.conv(&x, 32, 3, 2, 1);
    let mut x = b.relu(&c); // ReLU6

    // (expand, channels, repeats, stride)
    let cfg: &[(u64, u64, usize, u64)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for &(expand, ch, repeats, stride0) in cfg {
        for i in 0..repeats {
            let stride = if i == 0 { stride0 } else { 1 };
            x = inverted_residual(&mut b, &x, expand, ch, stride);
        }
    }

    let head = b.conv(&x, 1280, 1, 1, 0);
    let hr = b.relu(&head);
    let g = b.gavgpool(&hr);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 1000);
    b.finish()
}

/// Inverted residual: expand 1×1 + relu6, depthwise 3×3 + relu6,
/// project 1×1 (linear), residual add when shapes allow.
fn inverted_residual(b: &mut GraphBuilder, x: &Tap, expand: u64, out_ch: u64, stride: u64) -> Tap {
    let in_ch = x.shape.dims[1];
    let mid = in_ch * expand;
    let mut t = x.clone();
    if expand != 1 {
        let e = b.conv(&t, mid, 1, 1, 0);
        t = b.relu(&e);
    }
    let dw = b.dwconv(&t, 3, stride, 1);
    let dwr = b.relu(&dw);
    let proj = b.conv(&dwr, out_ch, 1, 1, 0);
    if stride == 1 && out_ch == in_ch {
        b.add(&proj, x)
    } else {
        proj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_plausible() {
        let n = build().op_count();
        assert!((80..120).contains(&n), "got {n}");
    }

    #[test]
    fn params_in_published_ballpark() {
        // ~3.5 M params.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((3.0..4.5).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn validates() {
        assert!(build().validate().is_ok());
    }
}
