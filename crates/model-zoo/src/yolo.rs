//! YOLOv2: the paper's *short* object-detection model (Table 1: 84
//! operators, 10.8 ms isolated). Darknet-19 backbone with unfolded batch
//! norm (the ONNX-zoo export keeps BN separate), explicit pad nodes before
//! the pools, a passthrough ("reorg") route from the 26×26 feature map, and
//! a small reshape chain in the region head — which is how the real export
//! reaches 84 nodes.

use dnn_graph::{Graph, GraphBuilder, OpKind, Tap, TensorShape};

/// Build YOLOv2 at the canonical 416×416 input.
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("yolov2", TensorShape::chw(3, 416, 416));
    let raw = b.source();

    // Input normalization as exported: scale Mul + dtype cast.
    let scaled = {
        let elems = raw.shape.elements();
        let s = b.raw(
            OpKind::Mul,
            "normalize",
            elems,
            raw.shape.clone(),
            0,
            &[&raw],
        );
        b.raw(OpKind::Identity, "cast_input", 0, s.shape.clone(), 0, &[&s])
    };
    let x = scaled;

    // Darknet-19 backbone. conv_bn_leaky = conv + batchnorm + relu (3 ops).
    let c1 = conv_bn_leaky(&mut b, &x, 32, 3);
    let p1 = pad_pool(&mut b, &c1);
    let c2 = conv_bn_leaky(&mut b, &p1, 64, 3);
    let p2 = pad_pool(&mut b, &c2);

    let c3 = conv_bn_leaky(&mut b, &p2, 128, 3);
    let c4 = conv_bn_leaky(&mut b, &c3, 64, 1);
    let c5 = conv_bn_leaky(&mut b, &c4, 128, 3);
    let p3 = pad_pool(&mut b, &c5);

    let c6 = conv_bn_leaky(&mut b, &p3, 256, 3);
    let c7 = conv_bn_leaky(&mut b, &c6, 128, 1);
    let c8 = conv_bn_leaky(&mut b, &c7, 256, 3);
    let p4 = pad_pool(&mut b, &c8);

    let c9 = conv_bn_leaky(&mut b, &p4, 512, 3);
    let c10 = conv_bn_leaky(&mut b, &c9, 256, 1);
    let c11 = conv_bn_leaky(&mut b, &c10, 512, 3);
    let c12 = conv_bn_leaky(&mut b, &c11, 256, 1);
    let c13 = conv_bn_leaky(&mut b, &c12, 512, 3); // passthrough source (26×26×512)
    let p5 = pad_pool(&mut b, &c13);

    let c14 = conv_bn_leaky(&mut b, &p5, 1024, 3);
    let c15 = conv_bn_leaky(&mut b, &c14, 512, 1);
    let c16 = conv_bn_leaky(&mut b, &c15, 1024, 3);
    let c17 = conv_bn_leaky(&mut b, &c16, 512, 1);
    let c18 = conv_bn_leaky(&mut b, &c17, 1024, 3);

    // Detection head.
    let c19 = conv_bn_leaky(&mut b, &c18, 1024, 3);
    let c20 = conv_bn_leaky(&mut b, &c19, 1024, 3);

    // Passthrough: 1×1 conv on the 26×26 map, then space-to-depth reorg.
    let c21 = conv_bn_leaky(&mut b, &c13, 64, 1);
    let reorg = b.resize(&c21, TensorShape::chw(256, 13, 13));
    let cat = b.concat(&[&reorg, &c20]);

    let c22 = conv_bn_leaky(&mut b, &cat, 1024, 3);
    // Final linear 1×1 conv: 5 anchors × (5 + 80 classes) = 425 channels.
    let det = b.conv(&c22, 425, 1, 1, 0);

    // Region-head reshape chain as exported to ONNX.
    let r1 = b.raw(
        OpKind::Reshape,
        "region_reshape1",
        0,
        TensorShape::new([1, 5, 85, 169]),
        0,
        &[&det],
    );
    let r2 = b.raw(
        OpKind::Reshape,
        "region_transpose",
        0,
        TensorShape::new([1, 5, 169, 85]),
        0,
        &[&r1],
    );
    let _out = b.raw(
        OpKind::Reshape,
        "region_reshape2",
        0,
        TensorShape::new([1, 845, 85]),
        0,
        &[&r2],
    );
    b.finish()
}

/// conv + batchnorm + leaky relu (ONNX export keeps BN unfolded).
fn conv_bn_leaky(b: &mut GraphBuilder, x: &Tap, ch: u64, k: u64) -> Tap {
    let pad = if k == 3 { 1 } else { 0 };
    let c = b.conv(x, ch, k, 1, pad);
    let n = b.batchnorm(&c);
    b.relu(&n)
}

/// explicit pad node + 2×2/2 maxpool, as exported.
fn pad_pool(b: &mut GraphBuilder, x: &Tap) -> Tap {
    let pad = b.raw(OpKind::Identity, "pad", 0, x.shape.clone(), 0, &[x]);
    b.maxpool(&pad, 2, 2, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_matches_table1() {
        assert_eq!(build().op_count(), 84);
    }

    #[test]
    fn flops_in_published_ballpark() {
        // Darknet reports YOLOv2 @ 416 as 29.47 BFLOPs.
        let g = build();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((25.0..35.0).contains(&gflops), "got {gflops}");
    }

    #[test]
    fn passthrough_creates_long_skip() {
        let g = build();
        // The reorg path consumes c13's output long after it was produced,
        // so some boundary in between carries the extra tensor.
        let has_long_skip = (0..g.op_count()).any(|v| g.inputs_of(v).iter().any(|&u| v - u > 15));
        assert!(has_long_skip);
    }

    #[test]
    fn output_is_region_tensor() {
        let g = build();
        let last = g.op(g.op_count() - 1);
        assert_eq!(last.output.elements(), 845 * 85);
    }
}
