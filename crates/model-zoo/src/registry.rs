//! Model registry: the paper's model sets with their Table 1 metadata.

use crate::calibrate::calibrate_to_ms;
use dnn_graph::Graph;
use gpu_sim::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Request length class from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LengthClass {
    /// Short request (strict effective latency expectations).
    Short,
    /// Long request (the ones worth splitting).
    Long,
}

/// Application domain from Table 1 / §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Image classification.
    Classification,
    /// Object detection.
    Detection,
    /// Text generation.
    TextGeneration,
}

/// The eleven models of the paper's §3.1 profiling set; the five marked
/// with a `Some` latency are the Table 1 benchmark set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelId {
    /// YOLOv2 — detection, short.
    YoloV2,
    /// GoogLeNet — classification, short.
    GoogLeNet,
    /// ResNet-50 — classification, long.
    ResNet50,
    /// VGG-19 — classification, long.
    Vgg19,
    /// GPT-2 — text generation, short.
    Gpt2,
    /// AlexNet (profiling set only).
    AlexNet,
    /// SqueezeNet v1.1 (profiling set only).
    SqueezeNet,
    /// ShuffleNet v1 (profiling set only).
    ShuffleNet,
    /// DenseNet-121 (profiling set only).
    DenseNet121,
    /// EfficientNet-B0 (profiling set only).
    EfficientNetB0,
    /// MobileNetV2 (profiling set only).
    MobileNetV2,
}

/// Static metadata about a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Which model.
    pub id: ModelId,
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Isolated latency on the paper's testbed, milliseconds. Table 1 values
    /// for the benchmark five; our documented estimates for the rest.
    pub latency_ms: f64,
    /// Length class (Table 1 "Type"); estimates use the 15 ms threshold the
    /// table implies.
    pub class: LengthClass,
}

impl ModelId {
    /// All eleven models.
    pub const ALL: [ModelId; 11] = [
        ModelId::YoloV2,
        ModelId::GoogLeNet,
        ModelId::ResNet50,
        ModelId::Vgg19,
        ModelId::Gpt2,
        ModelId::AlexNet,
        ModelId::SqueezeNet,
        ModelId::ShuffleNet,
        ModelId::DenseNet121,
        ModelId::EfficientNetB0,
        ModelId::MobileNetV2,
    ];

    /// Static metadata.
    pub fn info(self) -> ModelInfo {
        use Domain::*;
        use LengthClass::*;
        use ModelId::*;
        let (name, domain, latency_ms, class) = match self {
            YoloV2 => ("yolov2", Detection, 10.8, Short),
            GoogLeNet => ("googlenet", Classification, 13.2, Short),
            ResNet50 => ("resnet50", Classification, 28.35, Long),
            Vgg19 => ("vgg19", Classification, 67.5, Long),
            Gpt2 => ("gpt2", TextGeneration, 20.4, Short),
            AlexNet => ("alexnet", Classification, 14.0, Short),
            SqueezeNet => ("squeezenet_v1.1", Classification, 7.5, Short),
            ShuffleNet => ("shufflenet_v1", Classification, 9.0, Short),
            DenseNet121 => ("densenet121", Classification, 41.0, Long),
            EfficientNetB0 => ("efficientnet_b0", Detection, 24.0, Long),
            MobileNetV2 => ("mobilenet_v2", Classification, 11.5, Short),
        };
        ModelInfo {
            id: self,
            name,
            domain,
            latency_ms,
            class,
        }
    }

    /// Build the (uncalibrated) operator graph.
    pub fn build(self) -> Graph {
        match self {
            ModelId::YoloV2 => crate::yolo::build(),
            ModelId::GoogLeNet => crate::googlenet::build(),
            ModelId::ResNet50 => crate::resnet::build(),
            ModelId::Vgg19 => crate::vgg::build(),
            ModelId::Gpt2 => crate::gpt2::build(),
            ModelId::AlexNet => crate::alexnet::build(),
            ModelId::SqueezeNet => crate::squeezenet::build(),
            ModelId::ShuffleNet => crate::shufflenet::build(),
            ModelId::DenseNet121 => crate::densenet::build(),
            ModelId::EfficientNetB0 => crate::efficientnet::build(),
            ModelId::MobileNetV2 => crate::mobilenet::build(),
        }
    }

    /// Build and calibrate to the Table 1 / estimated latency on `dev`.
    pub fn build_calibrated(self, dev: &DeviceConfig) -> Graph {
        let mut g = self.build();
        calibrate_to_ms(&mut g, dev, self.info().latency_ms);
        g
    }
}

/// The five models of Table 1 in the paper's row order.
pub fn benchmark_models() -> [ModelId; 5] {
    [
        ModelId::YoloV2,
        ModelId::GoogLeNet,
        ModelId::ResNet50,
        ModelId::Vgg19,
        ModelId::Gpt2,
    ]
}

/// The full §3.1 profiling set (11 models).
pub fn profiling_models() -> [ModelId; 11] {
    ModelId::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::block_time_us;

    #[test]
    fn all_models_build_and_validate() {
        for id in ModelId::ALL {
            let g = id.build();
            assert!(g.validate().is_ok(), "{:?}", id);
            assert_eq!(g.name, id.info().name);
        }
    }

    #[test]
    fn benchmark_set_matches_table1_op_counts() {
        let expect = [
            (ModelId::YoloV2, 84),
            (ModelId::GoogLeNet, 142),
            (ModelId::ResNet50, 122),
            (ModelId::Vgg19, 44),
            (ModelId::Gpt2, 2534),
        ];
        for (id, ops) in expect {
            assert_eq!(id.build().op_count(), ops, "{:?}", id);
        }
    }

    #[test]
    fn calibrated_latencies_match_table1() {
        let dev = DeviceConfig::jetson_nano();
        for id in benchmark_models() {
            let g = id.build_calibrated(&dev);
            let ms = block_time_us(&g, &dev) / 1e3;
            let target = id.info().latency_ms;
            assert!(
                (ms - target).abs() < 1e-6,
                "{:?}: calibrated to {ms}, want {target}",
                id
            );
        }
    }

    #[test]
    fn long_models_are_the_slow_ones() {
        for id in ModelId::ALL {
            let info = id.info();
            match info.class {
                LengthClass::Long => assert!(info.latency_ms > 15.0),
                LengthClass::Short => assert!(info.latency_ms <= 21.0),
            }
        }
    }
}
