//! Latency calibration.
//!
//! Our cost model is not the authors' Jetson Nano, so each model's
//! *absolute* latency is matched to the paper's Table 1 by setting the
//! graph's time-scale (see [`dnn_graph::Graph::set_time_scale`]); the
//! *relative* per-operator profile — what the splitter actually optimizes
//! over — comes from the architecture.

use dnn_graph::Graph;
use gpu_sim::{op_times_us, DeviceConfig};

/// Scale `graph` so its isolated end-to-end latency on `dev` (operator time
/// plus one block dispatch) equals `target_ms`. Returns the applied scale.
///
/// # Panics
/// Panics if the target is not achievable (i.e. `target_ms` does not exceed
/// the fixed block dispatch overhead).
pub fn calibrate_to_ms(graph: &mut Graph, dev: &DeviceConfig, target_ms: f64) -> f64 {
    let target_us = target_ms * 1e3;
    assert!(
        target_us > dev.block_overhead_us,
        "target {target_ms} ms below the fixed dispatch overhead"
    );
    graph.set_time_scale(1.0);
    let raw: f64 = op_times_us(graph, dev).iter().sum();
    let scale = (target_us - dev.block_overhead_us) / raw;
    graph.set_time_scale(scale);
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::block_time_us;

    #[test]
    fn calibration_hits_target() {
        let dev = DeviceConfig::jetson_nano();
        let mut g = crate::resnet::build();
        calibrate_to_ms(&mut g, &dev, 28.35);
        let t = block_time_us(&g, &dev) / 1e3;
        assert!((t - 28.35).abs() < 1e-6, "got {t} ms");
    }

    #[test]
    fn recalibration_is_stable() {
        let dev = DeviceConfig::jetson_nano();
        let mut g = crate::vgg::build();
        let s1 = calibrate_to_ms(&mut g, &dev, 67.5);
        let s2 = calibrate_to_ms(&mut g, &dev, 67.5);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below the fixed dispatch overhead")]
    fn impossible_target_panics() {
        let dev = DeviceConfig::jetson_nano();
        let mut g = crate::alexnet::build();
        calibrate_to_ms(&mut g, &dev, 0.0001);
    }
}
