//! ShuffleNet v1 (g=3): profiling-set model (paper §3.1). Grouped 1×1
//! convolutions with channel shuffles and depthwise 3×3s — the depthwise
//! kernels run far from peak on edge GPUs, which the device model's
//! per-kind efficiency captures.

use dnn_graph::{Graph, GraphBuilder, Tap, TensorShape};

/// Build ShuffleNet v1 (groups = 3, 1.0×).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("shufflenet_v1", TensorShape::chw(3, 224, 224));
    let x = b.source();

    let c1 = b.conv(&x, 24, 3, 2, 1);
    let r1 = b.relu(&c1);
    let mut x = b.maxpool(&r1, 3, 2, 1);

    // Stages with (units, out channels) for g=3: 240, 480, 960.
    let stages: &[(usize, u64)] = &[(4, 240), (8, 480), (4, 960)];
    for &(units, ch) in stages {
        for i in 0..units {
            x = shuffle_unit(&mut b, &x, ch, i == 0);
        }
    }

    let g = b.gavgpool(&x);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 1000);
    b.finish()
}

/// ShuffleNet unit: gconv1x1 + relu + shuffle + dwconv3x3 + gconv1x1 +
/// (add | avgpool+concat) + relu.
fn shuffle_unit(b: &mut GraphBuilder, x: &Tap, out_ch: u64, downsample: bool) -> Tap {
    let mid = out_ch / 4;
    let c1 = b.conv(x, mid, 1, 1, 0);
    let r1 = b.relu(&c1);
    let sh = b.shuffle(&r1);
    let (stride, branch_ch) = if downsample {
        // Concat with the shortcut pool: main branch produces out - in channels.
        let in_ch = x.shape.dims[1];
        (2, out_ch.saturating_sub(in_ch).max(1))
    } else {
        (1, out_ch)
    };
    let dw = b.dwconv(&sh, 3, stride, 1);
    let c2 = b.conv(&dw, branch_ch, 1, 1, 0);
    let merged = if downsample {
        let short = b.avgpool(x, 3, 2, 1);
        b.concat(&[&short, &c2])
    } else {
        b.add(&c2, x)
    };
    b.relu(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::OpKind;

    #[test]
    fn op_count() {
        // Stem 3 + 16 units x 7/8 + tail 3.
        let n = build().op_count();
        assert!((120..140).contains(&n), "got {n}");
    }

    #[test]
    fn has_depthwise_and_shuffle_ops() {
        let g = build();
        assert!(g.ops().iter().any(|o| o.kind == OpKind::DepthwiseConv2d));
        assert_eq!(
            g.ops()
                .iter()
                .filter(|o| o.kind == OpKind::ChannelShuffle)
                .count(),
            16
        );
    }

    #[test]
    fn validates() {
        assert!(build().validate().is_ok());
    }
}
