//! AlexNet: profiling-set model (paper §3.1). Five convolutions, two LRN
//! layers, three fully connected layers — the classic 2012 topology as the
//! ONNX zoo exports it (22 nodes).

use dnn_graph::{Graph, GraphBuilder, TensorShape};

/// Build AlexNet (227×227 single-tower variant).
pub fn build() -> Graph {
    let mut b = GraphBuilder::new("alexnet", TensorShape::chw(3, 227, 227));
    let x = b.source();

    let c1 = b.conv(&x, 96, 11, 4, 0);
    let r1 = b.relu(&c1);
    let n1 = b.batchnorm(&r1); // LRN stand-in
    let p1 = b.maxpool(&n1, 3, 2, 0);

    let c2 = b.conv(&p1, 256, 5, 1, 2);
    let r2 = b.relu(&c2);
    let n2 = b.batchnorm(&r2); // LRN
    let p2 = b.maxpool(&n2, 3, 2, 0);

    let c3 = b.conv(&p2, 384, 3, 1, 1);
    let r3 = b.relu(&c3);
    let c4 = b.conv(&r3, 384, 3, 1, 1);
    let r4 = b.relu(&c4);
    let c5 = b.conv(&r4, 256, 3, 1, 1);
    let r5 = b.relu(&c5);
    let p5 = b.maxpool(&r5, 3, 2, 0);

    let f = b.flatten(&p5);
    let fc6 = b.dense(&f, 4096);
    let r6 = b.relu(&fc6);
    let fc7 = b.dense(&r6, 4096);
    let r7 = b.relu(&fc7);
    let fc8 = b.dense(&r7, 1000);
    let _ = b.softmax(&fc8);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count() {
        assert_eq!(build().op_count(), 22);
    }

    #[test]
    fn params_dominated_by_fc() {
        // AlexNet: ~61 M params, ~58 M of them in the FC layers.
        let g = build();
        let mparams = g.total_weight_bytes() as f64 / 4.0 / 1e6;
        assert!((58.0..65.0).contains(&mparams), "got {mparams}");
    }

    #[test]
    fn validates() {
        assert!(build().validate().is_ok());
    }
}
