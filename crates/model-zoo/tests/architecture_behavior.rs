//! Cross-cutting architecture checks: each family's signature structure
//! must show up in its boundary-transfer and timing behaviour — these are
//! the properties the splitter actually exploits.

use dnn_graph::{graph_stats, OpKind};
use gpu_sim::{block_time_us, op_times_us, DeviceConfig};
use model_zoo::{profiling_models, ModelId};

#[test]
fn calibration_is_exact_for_all_eleven() {
    let dev = DeviceConfig::jetson_nano();
    for id in profiling_models() {
        let g = id.build_calibrated(&dev);
        let ms = block_time_us(&g, &dev) / 1e3;
        assert!(
            (ms - id.info().latency_ms).abs() < 1e-6,
            "{id:?}: {ms} vs {}",
            id.info().latency_ms
        );
    }
}

#[test]
fn activation_curves_trend_downward_in_cnns() {
    // The §2.4 mechanism: CNN activation volume shrinks with depth. Check
    // the first-quartile mean exceeds the last-quartile mean.
    for id in [
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::GoogLeNet,
        ModelId::AlexNet,
        ModelId::SqueezeNet,
        ModelId::MobileNetV2,
    ] {
        let g = id.build();
        let s = graph_stats(&g);
        let q = s.activation_curve.len() / 4;
        let head: f64 = s.activation_curve[..q]
            .iter()
            .map(|&b| b as f64)
            .sum::<f64>()
            / q as f64;
        let tail: f64 = s.activation_curve[s.activation_curve.len() - q..]
            .iter()
            .map(|&b| b as f64)
            .sum::<f64>()
            / q as f64;
        assert!(head > 2.0 * tail, "{id:?}: head {head} vs tail {tail}");
    }
}

#[test]
fn vgg_is_front_heavy_resnet_is_balanced() {
    // VGG reaches half its FLOPs well before half its ops; ResNet is more
    // uniform. This drives where their even cuts land (Figure 2b).
    let vgg = graph_stats(&ModelId::Vgg19.build());
    let resnet = graph_stats(&ModelId::ResNet50.build());
    assert!(
        vgg.flops_midpoint_frac < 0.45,
        "vgg {}",
        vgg.flops_midpoint_frac
    );
    assert!(
        resnet.flops_midpoint_frac > vgg.flops_midpoint_frac,
        "resnet {} vs vgg {}",
        resnet.flops_midpoint_frac,
        vgg.flops_midpoint_frac
    );
}

#[test]
fn densenet_boundaries_grow_inside_blocks() {
    // Dense connectivity keeps every layer's output live: cuts deeper into
    // a dense block carry more tensors than the cut at its entry.
    let g = ModelId::DenseNet121.build();
    let entry = g.boundary_bytes(4); // right after the stem
    let mid = g.boundary_bytes(4 + 3 * 7); // three dense layers in
    assert!(mid > entry, "entry {entry} vs mid-block {mid}");
}

#[test]
fn gpt2_layer_structure_is_periodic() {
    // 12 identical blocks: operator times averaged per layer must be flat
    // (no layer dominates) — why its even cut sits near the middle.
    let dev = DeviceConfig::jetson_nano();
    let g = ModelId::Gpt2.build_calibrated(&dev);
    let times = op_times_us(&g, &dev);
    // Prolog 11 ops, 12 layers x 210, epilog 3.
    let layer_time = |l: usize| -> f64 {
        let start = 11 + l * 210;
        times[start..start + 210].iter().sum()
    };
    let t0 = layer_time(0);
    for l in 1..12 {
        let tl = layer_time(l);
        assert!(
            (tl - t0).abs() / t0 < 0.05,
            "layer {l} time {tl} deviates from layer 0 {t0}"
        );
    }
}

#[test]
fn depthwise_models_pay_their_efficiency_tax() {
    // Same FLOPs in depthwise form must cost more device time than in
    // dense conv form: ShuffleNet/MobileNet are bandwidth-bound.
    let dev = DeviceConfig::jetson_nano();
    for id in [
        ModelId::ShuffleNet,
        ModelId::MobileNetV2,
        ModelId::EfficientNetB0,
    ] {
        let g = id.build(); // uncalibrated: raw cost model
        let stats = graph_stats(&g);
        let time_us = block_time_us(&g, &dev);
        let gflops = stats.total_flops as f64 / 1e9;
        // Effective throughput in GFLOP/s.
        let eff = gflops / (time_us / 1e6);
        assert!(
            eff < 100.0,
            "{id:?}: {eff:.0} GFLOP/s is too close to peak for a depthwise net"
        );
    }
    // VGG, by contrast, sustains far higher effective throughput.
    let vgg = ModelId::Vgg19.build();
    let eff = (vgg.total_flops() as f64 / 1e9)
        / (block_time_us(&vgg, &DeviceConfig::jetson_nano()) / 1e6);
    assert!(eff > 80.0, "vgg {eff:.0} GFLOP/s");
}

#[test]
fn inception_and_fire_models_have_concat_fanin() {
    for (id, expected_concats) in [
        (ModelId::GoogLeNet, 9),
        (ModelId::SqueezeNet, 8),
        (ModelId::DenseNet121, 58),
    ] {
        let g = id.build();
        let concats = g.ops().iter().filter(|o| o.kind == OpKind::Concat).count();
        assert_eq!(concats, expected_concats, "{id:?}");
    }
}

#[test]
fn long_models_have_no_shape_only_padding() {
    // The benchmark long models must be pure compute graphs — op-count
    // matching never inflated them with fake nodes.
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build();
        let free = g.ops().iter().filter(|o| !o.kind.is_compute()).count();
        assert!(free <= 1, "{id:?} has {free} shape-only ops");
    }
}
