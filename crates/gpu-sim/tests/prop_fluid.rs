//! Property tests for the processor-sharing engine and the sequential
//! timeline — conservation laws that must hold for any workload.

use gpu_sim::{ContentionModel, FluidJob, FluidSim, Timeline};
use proptest::prelude::*;

fn jobs_strategy() -> impl Strategy<Value = Vec<FluidJob>> {
    proptest::collection::vec((0.0f64..500_000.0, 100.0f64..80_000.0), 1..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (arrival, work))| FluidJob {
                id: i as u64,
                arrival_us: arrival,
                work_us: work,
            })
            .collect()
    })
}

proptest! {
    /// Every job completes exactly once, never faster than isolated.
    #[test]
    fn fluid_conservation(jobs in jobs_strategy(), coef in 0.0f64..2.0) {
        let sim = FluidSim::new(ContentionModel::new(coef));
        let done = sim.run(&jobs);
        prop_assert_eq!(done.len(), jobs.len());
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..jobs.len() as u64).collect::<Vec<_>>());
        for d in &done {
            let j = &jobs[d.id as usize];
            prop_assert!(d.start_us >= j.arrival_us - 1e-6);
            prop_assert!(d.end_us >= d.start_us + j.work_us - 1e-6,
                "job {} finished faster than isolated", d.id);
        }
    }

    /// With zero contention the device behaves like infinite parallel
    /// lanes: completion = admission + work.
    #[test]
    fn fluid_zero_contention_is_exact(jobs in jobs_strategy()) {
        let sim = FluidSim::new(ContentionModel::new(0.0));
        let done = sim.run(&jobs);
        for d in &done {
            let j = &jobs[d.id as usize];
            prop_assert!((d.end_us - (j.arrival_us + j.work_us)).abs() < 1e-6);
        }
    }

    /// Higher contention never helps any individual job.
    #[test]
    fn fluid_contention_monotone(jobs in jobs_strategy(), c1 in 0.0f64..1.0, extra in 0.01f64..1.0) {
        let lo = FluidSim::new(ContentionModel::new(c1)).run(&jobs);
        let hi = FluidSim::new(ContentionModel::new(c1 + extra)).run(&jobs);
        let find = |v: &[gpu_sim::fluid::FluidCompletion], id| {
            v.iter().find(|d| d.id == id).unwrap().end_us
        };
        for j in &jobs {
            prop_assert!(find(&hi, j.id) + 1e-6 >= find(&lo, j.id));
        }
    }

    /// Admission quantum never admits a job earlier (note: a *completion*
    /// can actually get faster — delaying a competitor's admission frees
    /// the device — so the invariant is on starts, not ends).
    #[test]
    fn fluid_quantum_never_admits_early(jobs in jobs_strategy(), q in 100.0f64..50_000.0) {
        let free = FluidSim::new(ContentionModel::new(0.5)).run(&jobs);
        let gated = FluidSim::with_admission_quantum(ContentionModel::new(0.5), q).run(&jobs);
        for j in &jobs {
            let f = free.iter().find(|d| d.id == j.id).unwrap().start_us;
            let g = gated.iter().find(|d| d.id == j.id).unwrap().start_us;
            prop_assert!(g + 1e-6 >= f, "quantum admitted job {} early: {f} -> {g}", j.id);
            // Admission lands on a barrier (or coincides with one for jobs
            // admitted while the device drains a backlog).
            prop_assert!(g + 1e-6 >= j.arrival_us);
        }
    }

    /// The sequential timeline is work-conserving and non-overlapping.
    #[test]
    fn timeline_work_conserving(spans in proptest::collection::vec((0.0f64..100_000.0, 0.0f64..10_000.0), 1..50)) {
        let mut tl = Timeline::new();
        let mut total = 0.0;
        for (i, (earliest, dur)) in spans.iter().enumerate() {
            let (s, e) = tl.execute(format!("s{i}"), *earliest, *dur);
            prop_assert!(s >= *earliest);
            prop_assert!((e - s - dur).abs() < 1e-9);
            total += dur;
        }
        prop_assert!(tl.trace().first_overlap().is_none());
        // Busy time can't be less than total work.
        prop_assert!(tl.busy_until_us() >= total - 1e-6);
    }
}
