//! Pluggable device backends and fleet specification.
//!
//! Everything below the cluster router sees an accelerator through the
//! [`Backend`] trait: a label, roofline parameters ([`DeviceConfig`]), a
//! number of spatial partitions (streams), and a relative speed. A
//! [`FleetSpec`] describes a heterogeneous fleet compactly
//! (`"jetson*8,nx:2*4,edge:4*4"`) and instantiates it into concrete
//! [`SimGpu`] backends.
//!
//! Speeds are expressed relative to the paper's testbed
//! ([`DeviceConfig::jetson_nano`] ≡ 1.0) and derived from the peak-GFLOPS
//! ratio, so a fleet's aggregate [`Backend::capacity`] is measured in
//! "Jetson units" of sustained work.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// A simulated accelerator as seen by a cluster-level placement/routing
/// layer: identity, roofline parameters, spatial partitioning, and
/// relative speed.
pub trait Backend: Send + Sync {
    /// Human-readable device-class label (e.g. `"jetson"`).
    fn label(&self) -> &str;

    /// Roofline/overhead parameters of the device.
    fn config(&self) -> &DeviceConfig;

    /// Number of spatial partitions (concurrent streams) the device is
    /// carved into. Each partition hosts one independent SPLIT scheduler.
    fn streams(&self) -> usize {
        1
    }

    /// Relative single-stream speed vs. the reference Jetson Nano.
    fn speed(&self) -> f64 {
        1.0
    }

    /// Effective speed of one spatial partition once contention with the
    /// device's other `k-1` partitions is accounted for, using the
    /// resource-aligned interference model
    /// (`1/(1 + aligned_contention_coef * (k-1))`).
    fn lane_speed(&self) -> f64 {
        let k = self.streams().max(1) as f64;
        self.speed() / (1.0 + self.config().aligned_contention_coef * (k - 1.0))
    }

    /// Aggregate sustained throughput of the device in Jetson units:
    /// `lane_speed * streams`.
    fn capacity(&self) -> f64 {
        self.lane_speed() * self.streams().max(1) as f64
    }
}

/// A concrete simulated GPU instantiated from a [`FleetSpec`] entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimGpu {
    /// Device-class label (`"jetson"`, `"nx"`, `"edge"`).
    pub class: String,
    /// Roofline parameters for the class.
    pub config: DeviceConfig,
    /// Number of spatial partitions.
    pub streams: usize,
    /// Relative single-stream speed vs. the Jetson Nano reference.
    pub speed: f64,
}

impl Backend for SimGpu {
    fn label(&self) -> &str {
        &self.class
    }

    fn config(&self) -> &DeviceConfig {
        &self.config
    }

    fn streams(&self) -> usize {
        self.streams
    }

    fn speed(&self) -> f64 {
        self.speed
    }
}

/// Known device classes: `(label, config, default streams)`.
///
/// Speed is derived from the peak-GFLOPS ratio against the Jetson Nano
/// reference, so adding a class only requires a [`DeviceConfig`] preset.
fn class_table() -> [(&'static str, DeviceConfig, usize); 3] {
    [
        ("jetson", DeviceConfig::jetson_nano(), 1),
        ("nx", DeviceConfig::xavier_nx(), 2),
        ("edge", DeviceConfig::edge_server(), 4),
    ]
}

/// Look up a device class by label, returning its config and default
/// stream count. `None` for unknown labels.
pub fn device_class(label: &str) -> Option<(DeviceConfig, usize)> {
    class_table()
        .into_iter()
        .find(|(l, _, _)| *l == label)
        .map(|(_, cfg, streams)| (cfg, streams))
}

/// All known device-class labels, for error messages.
pub fn device_class_labels() -> Vec<&'static str> {
    class_table().into_iter().map(|(l, _, _)| l).collect()
}

fn build_gpu(label: &str, config: DeviceConfig, streams: usize) -> SimGpu {
    let reference = DeviceConfig::jetson_nano().peak_gflops;
    SimGpu {
        class: label.to_string(),
        speed: config.peak_gflops / reference,
        config,
        streams,
    }
}

/// One line of a [`FleetSpec`]: `count` devices of a class, each carved
/// into `streams` spatial partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEntry {
    /// Device-class label (must resolve via [`device_class`]).
    pub class: String,
    /// Number of identical devices of this class.
    pub count: usize,
    /// Spatial partitions per device.
    pub streams: usize,
}

/// A compact description of a heterogeneous fleet of simulated GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Device groups, instantiated in order.
    pub entries: Vec<FleetEntry>,
}

impl FleetSpec {
    /// The default heterogeneous mix for `n` devices: classes cycle
    /// through `jetson, nx, jetson, edge`, so every fourth device is a
    /// big edge box and half the fleet is Nano-class. Deterministic in
    /// `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn heterogeneous(n: usize) -> Self {
        assert!(n > 0, "fleet must have at least one device");
        let cycle = ["jetson", "nx", "jetson", "edge"];
        let mut entries: Vec<FleetEntry> = Vec::new();
        for i in 0..n {
            let class = cycle[i % cycle.len()];
            let (_, streams) = device_class(class).expect("cycle classes are known");
            match entries.last_mut() {
                Some(e) if e.class == class && e.streams == streams => e.count += 1,
                _ => entries.push(FleetEntry {
                    class: class.to_string(),
                    count: 1,
                    streams,
                }),
            }
        }
        Self { entries }
    }

    /// A homogeneous fleet of `n` devices of one class with its default
    /// stream count.
    ///
    /// # Panics
    /// Panics if the class is unknown or `n == 0`.
    pub fn uniform(class: &str, n: usize) -> Self {
        assert!(n > 0, "fleet must have at least one device");
        let (_, streams) =
            device_class(class).unwrap_or_else(|| panic!("unknown device class `{class}`"));
        Self {
            entries: vec![FleetEntry {
                class: class.to_string(),
                count: n,
                streams,
            }],
        }
    }

    /// Parse a compact spec: comma-separated `class[:streams][*count]`
    /// groups, e.g. `"jetson*8,nx:2*4,edge:4*4"`. Omitted `streams`
    /// falls back to the class default; omitted `count` means 1.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for group in text.split(',') {
            let group = group.trim();
            if group.is_empty() {
                return Err(format!("empty group in fleet spec `{text}`"));
            }
            let (head, count) = match group.split_once('*') {
                Some((h, c)) => (
                    h,
                    c.parse::<usize>()
                        .map_err(|_| format!("bad device count in `{group}`"))?,
                ),
                None => (group, 1),
            };
            let (class, streams) = match head.split_once(':') {
                Some((cl, s)) => (
                    cl,
                    Some(
                        s.parse::<usize>()
                            .map_err(|_| format!("bad stream count in `{group}`"))?,
                    ),
                ),
                None => (head, None),
            };
            let (_, default_streams) = device_class(class).ok_or_else(|| {
                format!(
                    "unknown device class `{class}` (known: {})",
                    device_class_labels().join(", ")
                )
            })?;
            let streams = streams.unwrap_or(default_streams);
            if count == 0 || streams == 0 {
                return Err(format!("zero count/streams in `{group}`"));
            }
            entries.push(FleetEntry {
                class: class.to_string(),
                count,
                streams,
            });
        }
        if entries.is_empty() {
            return Err("empty fleet spec".to_string());
        }
        Ok(Self { entries })
    }

    /// Total number of devices.
    pub fn device_count(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Total number of spatial partitions (scheduler lanes) across the
    /// fleet.
    pub fn lane_count(&self) -> usize {
        self.entries.iter().map(|e| e.count * e.streams).sum()
    }

    /// Instantiate the fleet into concrete [`SimGpu`] backends, in spec
    /// order.
    ///
    /// # Panics
    /// Panics if an entry names an unknown class.
    pub fn instantiate(&self) -> Vec<SimGpu> {
        let mut devices = Vec::with_capacity(self.device_count());
        for entry in &self.entries {
            let (config, _) = device_class(&entry.class)
                .unwrap_or_else(|| panic!("unknown device class `{}`", entry.class));
            for _ in 0..entry.count {
                devices.push(build_gpu(&entry.class, config.clone(), entry.streams));
            }
        }
        devices
    }

    /// Render back to the compact `class:streams*count` form.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{}:{}*{}", e.class, e.streams, e.count))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_counts() {
        let spec = FleetSpec::parse("jetson*8,nx:2*4,edge:4*4").unwrap();
        assert_eq!(spec.device_count(), 16);
        assert_eq!(spec.lane_count(), 8 + 8 + 16);
        let again = FleetSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn parse_defaults_streams_and_count() {
        let spec = FleetSpec::parse("jetson,edge*2").unwrap();
        assert_eq!(spec.device_count(), 3);
        assert_eq!(spec.entries[0].streams, 1);
        assert_eq!(spec.entries[1].streams, 4);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FleetSpec::parse("").is_err());
        assert!(FleetSpec::parse("h100*4").is_err());
        assert!(FleetSpec::parse("jetson*zero").is_err());
        assert!(FleetSpec::parse("jetson:0*2").is_err());
        assert!(FleetSpec::parse("jetson*0").is_err());
    }

    #[test]
    fn heterogeneous_mix_cycles_classes() {
        let spec = FleetSpec::heterogeneous(16);
        assert_eq!(spec.device_count(), 16);
        let devices = spec.instantiate();
        assert_eq!(devices.iter().filter(|d| d.class == "jetson").count(), 8);
        assert_eq!(devices.iter().filter(|d| d.class == "nx").count(), 4);
        assert_eq!(devices.iter().filter(|d| d.class == "edge").count(), 4);
    }

    #[test]
    fn capacity_orders_by_device_tier() {
        let jetson = build_gpu("jetson", DeviceConfig::jetson_nano(), 1);
        let nx = build_gpu("nx", DeviceConfig::xavier_nx(), 2);
        let edge = build_gpu("edge", DeviceConfig::edge_server(), 4);
        assert!((jetson.speed - 1.0).abs() < 1e-12);
        assert!((jetson.capacity() - 1.0).abs() < 1e-12);
        assert!(jetson.capacity() < nx.capacity());
        assert!(nx.capacity() < edge.capacity());
        // Spatial partitioning pays interference: a lane is slower than
        // the isolated device, but the device in aggregate is faster.
        assert!(nx.lane_speed() < nx.speed);
        assert!(nx.capacity() > nx.speed);
    }

    #[test]
    fn speed_scales_tables_consistently() {
        // The fleet's capacity unit is "one Jetson": a 4-device uniform
        // jetson fleet has capacity 4.
        let total: f64 = FleetSpec::uniform("jetson", 4)
            .instantiate()
            .iter()
            .map(|d| d.capacity())
            .sum();
        assert!((total - 4.0).abs() < 1e-12);
    }
}
