//! Device configuration: the knobs of the simulated edge accelerator.

use serde::{Deserialize, Serialize};

/// Static description of the simulated shared GPU.
///
/// The default, [`DeviceConfig::jetson_nano`], is loosely calibrated to the
/// paper's testbed (NVIDIA Jetson Nano, fp32 via ONNX Runtime): ~236 GFLOPS
/// fp32 peak, 25.6 GB/s LPDDR4, high kernel-launch latency, and expensive
/// block-boundary transfers because a split ONNX model serializes the
/// intermediate tensor between runtime sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Peak arithmetic throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Fixed kernel-launch overhead per operator, microseconds.
    pub launch_overhead_us: f64,
    /// Effective bandwidth for moving an intermediate tensor out of and back
    /// into the runtime at a block boundary, GB/s (covers device→host plus
    /// host→device plus serialization; Jetson unified memory still pays the
    /// runtime-session copy).
    pub boundary_bw_gbps: f64,
    /// Fixed cost per block invocation, microseconds (runtime session
    /// dispatch, input binding).
    pub block_overhead_us: f64,
    /// Contention coefficient: `k` concurrent streams each run at
    /// `1/(1 + coef*(k-1))` of isolated speed.
    pub contention_coef: f64,
    /// Contention coefficient when operators are resource-aligned (the RT-A
    /// trick): alignment reduces, but does not eliminate, interference.
    pub aligned_contention_coef: f64,
}

impl DeviceConfig {
    /// The paper's testbed: NVIDIA Jetson Nano (fp32).
    pub fn jetson_nano() -> Self {
        Self {
            peak_gflops: 236.0,
            mem_bw_gbps: 25.6,
            launch_overhead_us: 9.0,
            boundary_bw_gbps: 1.0,
            block_overhead_us: 600.0,
            contention_coef: 0.85,
            aligned_contention_coef: 0.35,
        }
    }

    /// A mid-tier embedded accelerator between the Nano and the edge
    /// server (loosely a Xavier-NX-class part): ~4× the Nano's compute,
    /// better interconnect, and milder spatial-sharing interference.
    pub fn xavier_nx() -> Self {
        Self {
            peak_gflops: 944.0,
            mem_bw_gbps: 59.7,
            launch_overhead_us: 7.0,
            boundary_bw_gbps: 3.0,
            block_overhead_us: 300.0,
            contention_coef: 0.7,
            aligned_contention_coef: 0.3,
        }
    }

    /// A comfortably faster edge box (used by ablation benches to show the
    /// conclusions are not an artifact of one device point).
    pub fn edge_server() -> Self {
        Self {
            peak_gflops: 4000.0,
            mem_bw_gbps: 320.0,
            launch_overhead_us: 4.0,
            boundary_bw_gbps: 12.0,
            block_overhead_us: 90.0,
            contention_coef: 0.55,
            aligned_contention_coef: 0.2,
        }
    }

    /// Arithmetic efficiency (fraction of peak) achieved by an operator
    /// kind. Depthwise convolutions and elementwise kernels are famously
    /// far from peak on edge GPUs.
    pub fn efficiency(&self, kind: dnn_graph::OpKind) -> f64 {
        use dnn_graph::OpKind::*;
        match kind {
            Conv2d => 0.55,
            Dense | MatMul => 0.60,
            DepthwiseConv2d => 0.18,
            MaxPool | AvgPool | GlobalAvgPool => 0.25,
            BatchNorm | LayerNorm | Softmax | Relu | Sigmoid | Gelu | Add | Mul => 0.30,
            Concat | ChannelShuffle | Resize | Embedding => 0.25,
            Reshape | Identity => 1.0,
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::jetson_nano()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::OpKind;

    #[test]
    fn presets_are_sane() {
        for dev in [
            DeviceConfig::jetson_nano(),
            DeviceConfig::xavier_nx(),
            DeviceConfig::edge_server(),
        ] {
            assert!(dev.peak_gflops > 0.0);
            assert!(dev.mem_bw_gbps > 0.0);
            assert!(dev.boundary_bw_gbps > 0.0);
            assert!(dev.launch_overhead_us >= 0.0);
            assert!(dev.contention_coef > dev.aligned_contention_coef);
        }
    }

    #[test]
    fn efficiency_in_unit_interval() {
        let dev = DeviceConfig::default();
        for kind in [
            OpKind::Conv2d,
            OpKind::DepthwiseConv2d,
            OpKind::Dense,
            OpKind::Relu,
            OpKind::Reshape,
            OpKind::Softmax,
        ] {
            let e = dev.efficiency(kind);
            assert!(e > 0.0 && e <= 1.0);
        }
    }

    #[test]
    fn dense_beats_depthwise_efficiency() {
        let dev = DeviceConfig::default();
        assert!(dev.efficiency(OpKind::Dense) > dev.efficiency(OpKind::DepthwiseConv2d));
    }
}
