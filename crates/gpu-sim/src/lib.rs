#![warn(missing_docs)]
//! # gpu-sim — a deterministic shared-GPU timing simulator
//!
//! Substitute for the paper's NVIDIA Jetson Nano + CUDA testbed. SPLIT's
//! algorithms consume exactly three hardware quantities:
//!
//! 1. per-operator execution time (roofline cost model, [`kernel`]),
//! 2. the cost of moving an intermediate tensor across a split boundary
//!    ([`transfer`]) — the source of *splitting overhead* (paper Figure 2a),
//! 3. the slowdown that concurrent streams inflict on each other
//!    ([`contention`]) — what the RT-A / Stream-Parallel baselines pay.
//!
//! On top of the cost model sit two execution engines:
//!
//! * [`timeline::Timeline`] — a sequential device timeline used by the
//!   sequential policies (SPLIT, ClockWork, PREMA), and
//! * [`fluid::FluidSim`] — a processor-sharing discrete-event engine used
//!   by the concurrent multi-stream baseline (RT-A), where `k` resident
//!   requests each progress at rate `1/slowdown(k)`.
//!
//! All times are `f64` microseconds; the simulators are bit-deterministic.

pub mod backend;
pub mod contention;
pub mod costtable;
pub mod device;
pub mod fluid;
pub mod kernel;
pub mod memory;
pub mod timeline;
pub mod trace;
pub mod transfer;

pub use backend::{device_class, device_class_labels, Backend, FleetEntry, FleetSpec, SimGpu};
pub use contention::ContentionModel;
pub use costtable::CostTable;
pub use device::DeviceConfig;
pub use fluid::{FluidJob, FluidSim};
pub use kernel::{block_time_us, op_time_us, op_times_us, split_block_times_us};
pub use memory::{ModelMemory, ResidencyOutcome};
pub use timeline::Timeline;
pub use trace::{parse_block_label, Trace, TraceEvent, TransferRecord};
pub use transfer::boundary_transfer_us;
