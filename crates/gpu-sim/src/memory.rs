//! Device-memory residency: weights must be on the device to run.
//!
//! The Jetson Nano has 4 GB shared by everything; the paper's five-model
//! deployment (~240 MB of fp32 weights plus activations and runtime
//! overheads) fits, which is why the paper never discusses swapping. This
//! module makes that assumption explicit and checkable — and lets the
//! capacity-planning harness explore deployments that *don't* fit, where
//! cold-start weight loading (ClockWork's central concern) dominates
//! tail latency.
//!
//! The model is an LRU cache of model weights with a load cost of
//! `weight_bytes / host-to-device bandwidth`.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Outcome of ensuring a model is resident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyOutcome {
    /// Time spent loading weights (0 on a hit), µs.
    pub load_us: f64,
    /// Whether the weights were already resident.
    pub hit: bool,
    /// Number of models evicted to make room.
    pub evicted: usize,
}

/// LRU weight cache for a device with finite memory.
#[derive(Debug, Clone)]
pub struct ModelMemory {
    capacity_bytes: u64,
    used_bytes: u64,
    /// (model name, weight bytes), most recently used last.
    resident: Vec<(String, u64)>,
    hits: u64,
    misses: u64,
}

impl ModelMemory {
    /// A cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        Self {
            capacity_bytes,
            used_bytes: 0,
            resident: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The Jetson Nano's 4 GB module, half budgeted to weights (the rest
    /// is activations, runtime, and the OS).
    pub fn jetson_nano() -> Self {
        Self::new(2 * 1024 * 1024 * 1024)
    }

    /// Ensure `model` (with `weight_bytes` of parameters) is resident,
    /// evicting least-recently-used models as needed. Returns the load
    /// cost on `dev`.
    ///
    /// # Panics
    /// Panics if a single model exceeds the device capacity — that is a
    /// deployment error, not a scheduling situation.
    pub fn ensure_resident(
        &mut self,
        model: &str,
        weight_bytes: u64,
        dev: &DeviceConfig,
    ) -> ResidencyOutcome {
        assert!(
            weight_bytes <= self.capacity_bytes,
            "model {model:?} ({weight_bytes} B) exceeds device capacity {} B",
            self.capacity_bytes
        );
        if let Some(pos) = self.resident.iter().position(|(m, _)| m == model) {
            // Hit: refresh recency.
            let entry = self.resident.remove(pos);
            self.resident.push(entry);
            self.hits += 1;
            return ResidencyOutcome {
                load_us: 0.0,
                hit: true,
                evicted: 0,
            };
        }
        self.misses += 1;
        let mut evicted = 0;
        while self.used_bytes + weight_bytes > self.capacity_bytes {
            let (_, bytes) = self.resident.remove(0);
            self.used_bytes -= bytes;
            evicted += 1;
        }
        self.used_bytes += weight_bytes;
        self.resident.push((model.to_string(), weight_bytes));
        let load_us = weight_bytes as f64 / (dev.boundary_bw_gbps * 1e3);
        ResidencyOutcome {
            load_us,
            hit: false,
            evicted,
        }
    }

    /// Whether a model is currently resident.
    pub fn is_resident(&self, model: &str) -> bool {
        self.resident.iter().any(|(m, _)| m == model)
    }

    /// Bytes currently used by resident weights.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident models.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn dev() -> DeviceConfig {
        DeviceConfig::jetson_nano()
    }

    #[test]
    fn first_touch_loads_then_hits() {
        let mut mem = ModelMemory::new(100 * MB);
        let a = mem.ensure_resident("resnet", 50 * MB, &dev());
        assert!(!a.hit);
        assert!(a.load_us > 0.0);
        let b = mem.ensure_resident("resnet", 50 * MB, &dev());
        assert!(b.hit);
        assert_eq!(b.load_us, 0.0);
        assert_eq!(mem.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut mem = ModelMemory::new(100 * MB);
        mem.ensure_resident("a", 40 * MB, &dev());
        mem.ensure_resident("b", 40 * MB, &dev());
        // Touch a so b becomes the LRU.
        mem.ensure_resident("a", 40 * MB, &dev());
        let c = mem.ensure_resident("c", 40 * MB, &dev());
        assert_eq!(c.evicted, 1);
        assert!(mem.is_resident("a"));
        assert!(!mem.is_resident("b"), "b was least recently used");
        assert!(mem.is_resident("c"));
        assert_eq!(mem.used_bytes(), 80 * MB);
    }

    #[test]
    fn eviction_can_cascade() {
        let mut mem = ModelMemory::new(100 * MB);
        mem.ensure_resident("a", 30 * MB, &dev());
        mem.ensure_resident("b", 30 * MB, &dev());
        mem.ensure_resident("c", 30 * MB, &dev());
        let big = mem.ensure_resident("big", 90 * MB, &dev());
        assert_eq!(big.evicted, 3);
        assert_eq!(mem.resident_count(), 1);
    }

    #[test]
    fn load_cost_scales_with_weights() {
        let mut mem = ModelMemory::new(1024 * MB);
        let small = mem.ensure_resident("s", 10 * MB, &dev());
        let large = mem.ensure_resident("l", 100 * MB, &dev());
        assert!((large.load_us / small.load_us - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_deployment_fits_jetson() {
        // The Table 1 five-model weight set (~240 MB fp32 + GPT-2's 0.6 GB
        // embedding-heavy weights) fits the weight budget: no steady-state
        // swapping, confirming the paper's silent assumption.
        let mut mem = ModelMemory::jetson_nano();
        let weights: &[(&str, u64)] = &[
            ("yolov2", 200 * MB),
            ("googlenet", 28 * MB),
            ("resnet50", 102 * MB),
            ("vgg19", 575 * MB),
            ("gpt2", 650 * MB),
        ];
        for (m, b) in weights {
            mem.ensure_resident(m, *b, &dev());
        }
        // Second pass: all hits.
        for (m, b) in weights {
            assert!(mem.ensure_resident(m, *b, &dev()).hit, "{m} was evicted");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds device capacity")]
    fn oversized_model_rejected() {
        let mut mem = ModelMemory::new(10 * MB);
        mem.ensure_resident("whale", 11 * MB, &dev());
    }
}
