//! Roofline kernel cost model and block timing.
//!
//! An operator's isolated execution time is
//! `launch + max(flops / (peak·eff), bytes_touched / mem_bw)` — the classic
//! roofline: compute-bound kernels pay for arithmetic, bandwidth-bound
//! kernels for traffic. `bytes_touched` counts the operator's inputs
//! (producer outputs), its own output, and its weights.
//!
//! Block timing adds the split costs: each block pays a fixed session
//! dispatch overhead, the first block of a boundary pays the device→host
//! half of the intermediate-tensor move and the next block the host→device
//! half (see [`crate::transfer`]).

use crate::device::DeviceConfig;
use dnn_graph::{Graph, SplitSpec};

/// Isolated execution time of operator `id` of `graph`, in microseconds.
pub fn op_time_us(graph: &Graph, id: usize, dev: &DeviceConfig) -> f64 {
    let op = graph.op(id);
    if !op.kind.is_compute() {
        // Shape-only ops are free on device (metadata updates).
        return 0.0;
    }
    let compute_us = op.flops as f64 / (dev.peak_gflops * dev.efficiency(op.kind) * 1e3);
    let input_bytes: u64 = if graph.inputs_of(id).is_empty() {
        // The model input tensor: approximate with the op's own output size
        // (first layers are dominated by their own traffic anyway).
        op.output_bytes()
    } else {
        graph
            .inputs_of(id)
            .iter()
            .map(|&u| graph.op(u).output_bytes())
            .sum()
    };
    let bytes = input_bytes + op.output_bytes() + op.weight_bytes;
    let mem_us = bytes as f64 / (dev.mem_bw_gbps * 1e3);
    graph.time_scale() * (dev.launch_overhead_us + compute_us.max(mem_us))
}

/// Isolated execution times of every operator, in topological order.
pub fn op_times_us(graph: &Graph, dev: &DeviceConfig) -> Vec<f64> {
    (0..graph.op_count())
        .map(|i| op_time_us(graph, i, dev))
        .collect()
}

/// Execution time of the *unsplit* model: sum of operator times plus one
/// block dispatch overhead.
pub fn block_time_us(graph: &Graph, dev: &DeviceConfig) -> f64 {
    op_times_us(graph, dev).iter().sum::<f64>() + dev.block_overhead_us
}

/// Execution times of each block under a split, in microseconds.
///
/// `result[j]` covers: the h2d half of block `j`'s leading boundary, the
/// block's operators, the d2h half of its trailing boundary, and the fixed
/// per-block dispatch overhead. Summing the vector therefore yields the
/// end-to-end time of running the split model back to back, and
/// `sum(result) - block_time_us(unsplit)` is the paper's *splitting
/// overhead* (§2.4, footnote 2 — expressed there as a ratio).
///
/// One-shot convenience over [`crate::costtable::CostTable`]: builds the
/// table and evaluates the single spec. Call sites profiling many
/// candidates of the same (graph, device) pair should build the table once
/// and use [`crate::costtable::CostTable::split_block_times_us`] directly —
/// the results are bit-identical either way.
pub fn split_block_times_us(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> Vec<f64> {
    crate::costtable::CostTable::build(graph, dev).split_block_times_us(spec.cuts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::half_boundary_us;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn toy() -> Graph {
        let mut b = GraphBuilder::new("toy", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let c1 = b.conv(&x, 32, 3, 1, 1);
        let r1 = b.relu(&c1);
        let p = b.maxpool(&r1, 2, 2, 0);
        let c2 = b.conv(&p, 64, 3, 1, 1);
        let r2 = b.relu(&c2);
        let g = b.gavgpool(&r2);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn op_times_positive_for_compute() {
        let g = toy();
        let dev = DeviceConfig::default();
        let times = op_times_us(&g, &dev);
        assert_eq!(times.len(), g.op_count());
        for (i, t) in times.iter().enumerate() {
            if g.op(i).kind.is_compute() {
                assert!(*t >= dev.launch_overhead_us, "op {i} too fast: {t}");
            } else {
                assert_eq!(*t, 0.0);
            }
        }
    }

    #[test]
    fn conv_slower_than_relu() {
        let g = toy();
        let dev = DeviceConfig::default();
        let times = op_times_us(&g, &dev);
        // op0 = big conv, op1 = relu on same tensor
        assert!(times[0] > times[1]);
    }

    #[test]
    fn split_times_sum_exceeds_unsplit() {
        let g = toy();
        let dev = DeviceConfig::default();
        let unsplit = block_time_us(&g, &dev);
        let spec = SplitSpec::new(&g, vec![3]).unwrap();
        let blocks = split_block_times_us(&g, &spec, &dev);
        assert_eq!(blocks.len(), 2);
        let total: f64 = blocks.iter().sum();
        assert!(
            total > unsplit,
            "splitting must cost extra: split {total} vs unsplit {unsplit}"
        );
        // The extra cost is exactly one more block overhead plus the
        // boundary transfer.
        let transfer = 2.0 * half_boundary_us(g.boundary_bytes(3), &dev);
        let expect = unsplit + dev.block_overhead_us + transfer;
        assert!((total - expect).abs() < 1e-6);
    }

    #[test]
    fn earlier_cut_costs_more_in_cnn() {
        // CNN activations shrink with depth, so an early boundary moves more
        // data — the paper's Figure 2(a) observation.
        let g = toy();
        let dev = DeviceConfig::default();
        let early = SplitSpec::new(&g, vec![1]).unwrap();
        let late = SplitSpec::new(&g, vec![5]).unwrap();
        let sum = |s: &SplitSpec| split_block_times_us(&g, s, &dev).iter().sum::<f64>();
        assert!(sum(&early) > sum(&late));
    }

    #[test]
    fn time_scale_scales_ops_not_transfers() {
        let mut g = toy();
        let dev = DeviceConfig::default();
        let base_ops: f64 = op_times_us(&g, &dev).iter().sum();
        g.set_time_scale(0.5);
        let scaled_ops: f64 = op_times_us(&g, &dev).iter().sum();
        assert!((scaled_ops - 0.5 * base_ops).abs() < 1e-6);
        // Boundary bytes (and hence transfer costs) are untouched.
        assert_eq!(g.boundary_bytes(3), toy().boundary_bytes(3));
    }

    #[test]
    fn faster_device_is_faster() {
        let g = toy();
        let nano = block_time_us(&g, &DeviceConfig::jetson_nano());
        let server = block_time_us(&g, &DeviceConfig::edge_server());
        assert!(server < nano);
    }
}
