//! Sequential device timeline.
//!
//! The sequential policies (SPLIT, ClockWork, PREMA) never co-run kernels:
//! the device executes one block at a time. A [`Timeline`] is the single
//! shared lane — callers ask to run a span of known duration no earlier
//! than some time, and get back the realized `(start, end)`.

use crate::trace::Trace;

/// A single-lane device timeline with an attached [`Trace`].
#[derive(Debug, Default)]
pub struct Timeline {
    busy_until_us: f64,
    trace: Trace,
}

impl Timeline {
    /// Fresh timeline starting at t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The earliest time new work could start.
    #[inline]
    pub fn busy_until_us(&self) -> f64 {
        self.busy_until_us
    }

    /// Execute a span of `duration_us` starting no earlier than
    /// `earliest_us`; returns the realized `(start, end)`.
    pub fn execute(
        &mut self,
        label: impl Into<String>,
        earliest_us: f64,
        duration_us: f64,
    ) -> (f64, f64) {
        debug_assert!(duration_us >= 0.0);
        let start = self.busy_until_us.max(earliest_us);
        let end = start + duration_us;
        self.trace.record(label, 0, start, end);
        self.busy_until_us = end;
        (start, end)
    }

    /// Whether the device is idle at `t`.
    #[inline]
    pub fn idle_at(&self, t_us: f64) -> bool {
        t_us >= self.busy_until_us
    }

    /// Read the trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the trace out (consumes the timeline).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Export executed spans as telemetry block events
    /// (see [`Trace::lifecycle_events`]).
    pub fn lifecycle_events(&self) -> Vec<split_telemetry::Event> {
        self.trace.lifecycle_events()
    }

    /// Sample device busy-fraction over `bucket_us` windows
    /// (see [`Trace::utilization_series`]).
    pub fn utilization_series(&self, bucket_us: f64) -> Vec<split_telemetry::Event> {
        self.trace.utilization_series(bucket_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_back_to_back() {
        let mut tl = Timeline::new();
        let (s1, e1) = tl.execute("a", 0.0, 10.0);
        let (s2, e2) = tl.execute("b", 0.0, 5.0);
        assert_eq!((s1, e1), (0.0, 10.0));
        assert_eq!((s2, e2), (10.0, 15.0));
        assert!(tl.trace().first_overlap().is_none());
    }

    #[test]
    fn earliest_respected_when_idle() {
        let mut tl = Timeline::new();
        tl.execute("a", 0.0, 10.0);
        let (s, e) = tl.execute("b", 50.0, 5.0);
        assert_eq!((s, e), (50.0, 55.0));
        assert!(tl.idle_at(55.0));
        assert!(!tl.idle_at(54.0));
    }

    #[test]
    fn zero_duration_span_allowed() {
        let mut tl = Timeline::new();
        let (s, e) = tl.execute("noop", 3.0, 0.0);
        assert_eq!(s, e);
    }
}
