//! Processor-sharing ("fluid") simulation of concurrent GPU streams.
//!
//! The Stream-Parallel / Runtime-Aware baselines run every resident request
//! at once on one GPU. We model that as generalized processor sharing under
//! the [`ContentionModel`]: with `k` resident jobs, each progresses at rate
//! `1/slowdown(k)` of isolated speed. The engine is exact (piecewise-linear
//! progress between events) and deterministic.
//!
//! RT-A's *operator alignment* is modeled with an optional admission
//! quantum: a job arriving mid-group must wait for the next alignment
//! barrier before becoming resident (paper Figure 1's "A has to be aligned
//! with B").

use crate::contention::ContentionModel;
use serde::{Deserialize, Serialize};

/// A job submitted to the fluid simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidJob {
    /// Caller-chosen identifier (request id).
    pub id: u64,
    /// Arrival time, microseconds.
    pub arrival_us: f64,
    /// Isolated execution time (work), microseconds.
    pub work_us: f64,
}

/// A completed job with its realized span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidCompletion {
    /// Job id.
    pub id: u64,
    /// Time the job became resident (started making progress).
    pub start_us: f64,
    /// Completion time.
    pub end_us: f64,
}

/// Processor-sharing simulator.
///
/// ```
/// use gpu_sim::{ContentionModel, FluidJob, FluidSim};
///
/// // Two equal jobs slow each other down by the contention law.
/// let sim = FluidSim::new(ContentionModel::new(0.5));
/// let done = sim.run(&[
///     FluidJob { id: 0, arrival_us: 0.0, work_us: 100.0 },
///     FluidJob { id: 1, arrival_us: 0.0, work_us: 100.0 },
/// ]);
/// assert!((done[0].end_us - 150.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct FluidSim {
    contention: ContentionModel,
    /// Alignment barrier period; `None` admits jobs immediately on arrival.
    admission_quantum_us: Option<f64>,
}

struct Resident {
    id: u64,
    start_us: f64,
    remaining_us: f64,
}

impl FluidSim {
    /// Simulator with immediate admission.
    pub fn new(contention: ContentionModel) -> Self {
        Self {
            contention,
            admission_quantum_us: None,
        }
    }

    /// Simulator whose jobs are admitted only at multiples of `quantum_us`
    /// (RT-A alignment barriers).
    pub fn with_admission_quantum(contention: ContentionModel, quantum_us: f64) -> Self {
        assert!(quantum_us > 0.0, "quantum must be positive");
        Self {
            contention,
            admission_quantum_us: Some(quantum_us),
        }
    }

    fn admission_time(&self, arrival_us: f64) -> f64 {
        match self.admission_quantum_us {
            None => arrival_us,
            Some(q) => (arrival_us / q).ceil() * q,
        }
    }

    /// Run all jobs to completion; returns completions in finish order.
    pub fn run(&self, jobs: &[FluidJob]) -> Vec<FluidCompletion> {
        let mut pending: Vec<FluidJob> = jobs.to_vec();
        pending.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us).then(a.id.cmp(&b.id)));
        let mut pending = pending.into_iter().peekable();

        let mut resident: Vec<Resident> = Vec::new();
        let mut done: Vec<FluidCompletion> = Vec::with_capacity(jobs.len());
        let mut now = 0.0f64;

        loop {
            // Admit everything whose admission time has passed.
            while let Some(j) = pending.peek() {
                if self.admission_time(j.arrival_us) <= now + 1e-12 {
                    let j = pending.next().unwrap();
                    resident.push(Resident {
                        id: j.id,
                        start_us: now,
                        remaining_us: j.work_us,
                    });
                } else {
                    break;
                }
            }

            if resident.is_empty() {
                match pending.peek() {
                    Some(j) => {
                        now = self.admission_time(j.arrival_us);
                        continue;
                    }
                    None => break,
                }
            }

            let k = resident.len();
            let rate = self.contention.rate(k);
            // Earliest completion among residents at the current rate.
            let min_rem = resident
                .iter()
                .map(|r| r.remaining_us)
                .fold(f64::INFINITY, f64::min);
            let t_complete = now + min_rem / rate;
            // Next admission event.
            let t_admit = pending
                .peek()
                .map(|j| self.admission_time(j.arrival_us))
                .unwrap_or(f64::INFINITY);

            let t_next = t_complete.min(t_admit);
            if t_next <= now {
                // Floating-point underflow guard: the earliest completion
                // is less than one ulp of `now` away, so time cannot
                // advance. The remaining sliver of work is below the
                // clock's resolution — retire it outright rather than
                // spinning forever.
                for r in resident.iter_mut() {
                    if r.remaining_us <= min_rem + 1e-12 {
                        r.remaining_us = 0.0;
                    }
                }
            } else {
                let dt = t_next - now;
                for r in resident.iter_mut() {
                    r.remaining_us -= dt * rate;
                }
                now = t_next;
            }

            // Retire finished jobs (tolerate FP dust).
            let mut i = 0;
            while i < resident.len() {
                if resident[i].remaining_us <= 1e-9 {
                    let r = resident.swap_remove(i);
                    done.push(FluidCompletion {
                        id: r.id,
                        start_us: r.start_us,
                        end_us: now,
                    });
                } else {
                    i += 1;
                }
            }
        }

        done.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
        done
    }
}

/// Telemetry for a fluid run: the number of in-system jobs over time as
/// [`split_telemetry::Event::QueueDepth`] samples, one after every
/// arrival and every completion. Under processor sharing every resident
/// job progresses, so "depth" here counts resident jobs rather than a
/// wait queue — the same counter track the block schedulers emit.
pub fn queue_depth_series(
    jobs: &[FluidJob],
    done: &[FluidCompletion],
) -> Vec<split_telemetry::Event> {
    // +1 at each arrival, -1 at each completion, in time order
    // (completions win ties so depth never over-counts at an instant).
    let mut deltas: Vec<(f64, i64)> = jobs
        .iter()
        .map(|j| (j.arrival_us, 1))
        .chain(done.iter().map(|d| (d.end_us, -1)))
        .collect();
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut depth = 0i64;
    deltas
        .into_iter()
        .map(|(t_us, d)| {
            depth += d;
            split_telemetry::Event::QueueDepth {
                depth: depth.max(0) as usize,
                t_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival: f64, work: f64) -> FluidJob {
        FluidJob {
            id,
            arrival_us: arrival,
            work_us: work,
        }
    }

    #[test]
    fn lone_job_runs_at_full_speed() {
        let sim = FluidSim::new(ContentionModel::new(0.8));
        let done = sim.run(&[job(1, 5.0, 100.0)]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start_us, 5.0);
        assert!((done[0].end_us - 105.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_jobs_slow_each_other() {
        let c = 0.5;
        let sim = FluidSim::new(ContentionModel::new(c));
        let done = sim.run(&[job(1, 0.0, 100.0), job(2, 0.0, 100.0)]);
        // Both run together at rate 1/1.5 and finish simultaneously at 150.
        for d in &done {
            assert!((d.end_us - 150.0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn short_job_finishes_then_long_speeds_up() {
        let sim = FluidSim::new(ContentionModel::new(1.0)); // slowdown(2) = 2
        let done = sim.run(&[job(1, 0.0, 200.0), job(2, 0.0, 50.0)]);
        let short = done.iter().find(|d| d.id == 2).unwrap();
        let long = done.iter().find(|d| d.id == 1).unwrap();
        // Short: 50 work at rate 0.5 → ends at 100.
        assert!((short.end_us - 100.0).abs() < 1e-6);
        // Long: by t=100 has done 50; remaining 150 at full rate → 250.
        assert!((long.end_us - 250.0).abs() < 1e-6);
    }

    #[test]
    fn staggered_arrival_changes_rates() {
        let sim = FluidSim::new(ContentionModel::new(1.0));
        let done = sim.run(&[job(1, 0.0, 100.0), job(2, 50.0, 100.0)]);
        let a = done.iter().find(|d| d.id == 1).unwrap();
        let b = done.iter().find(|d| d.id == 2).unwrap();
        // Job1 alone for 50 (does 50 work), then shared at rate .5:
        // remaining 50 takes 100 → ends at 150.
        assert!((a.end_us - 150.0).abs() < 1e-6, "{a:?}");
        // Job2: 50 work done by t=150, then alone: 50 more → 200.
        assert!((b.end_us - 200.0).abs() < 1e-6, "{b:?}");
    }

    #[test]
    fn admission_quantum_delays_start() {
        let sim = FluidSim::with_admission_quantum(ContentionModel::new(0.0), 100.0);
        let done = sim.run(&[job(1, 30.0, 10.0)]);
        // Arrives at 30, admitted at the barrier t=100.
        assert_eq!(done[0].start_us, 100.0);
        assert!((done[0].end_us - 110.0).abs() < 1e-9);
    }

    #[test]
    fn no_contention_means_true_parallelism() {
        // coef 0: ideal device, k streams at full speed each.
        let sim = FluidSim::new(ContentionModel::new(0.0));
        let done = sim.run(&[job(1, 0.0, 100.0), job(2, 0.0, 100.0), job(3, 0.0, 100.0)]);
        for d in done {
            assert!((d.end_us - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_input() {
        let sim = FluidSim::new(ContentionModel::new(0.5));
        assert!(sim.run(&[]).is_empty());
    }

    #[test]
    fn queue_depth_series_tracks_residency() {
        let sim = FluidSim::new(ContentionModel::new(0.0));
        let jobs = vec![job(0, 0.0, 100.0), job(1, 50.0, 100.0)];
        let done = sim.run(&jobs);
        let depths: Vec<(usize, f64)> = queue_depth_series(&jobs, &done)
            .into_iter()
            .map(|e| match e {
                split_telemetry::Event::QueueDepth { depth, t_us } => (depth, t_us),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // 0 arrives (1), 1 arrives (2), 0 finishes at 100 (1),
        // 1 finishes at 150 (0).
        assert_eq!(depths, vec![(1, 0.0), (2, 50.0), (1, 100.0), (0, 150.0)]);
    }

    #[test]
    fn work_is_conserved() {
        // Total device-time under processor sharing with slowdown s(k):
        // busy integral equals sum of work scaled by interference; we check
        // completions are ordered and all jobs appear exactly once.
        let sim = FluidSim::new(ContentionModel::new(0.7));
        let jobs: Vec<FluidJob> = (0..20)
            .map(|i| job(i, (i as f64) * 13.0, 40.0 + (i as f64) * 7.0))
            .collect();
        let done = sim.run(&jobs);
        assert_eq!(done.len(), jobs.len());
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        for w in done.windows(2) {
            assert!(w[0].end_us <= w[1].end_us + 1e-9);
        }
        for d in &done {
            let j = jobs.iter().find(|j| j.id == d.id).unwrap();
            assert!(
                d.end_us - j.arrival_us >= j.work_us - 1e-6,
                "faster than isolated: {d:?}"
            );
        }
    }
}
