//! Multi-stream contention model.
//!
//! Running `k` DNN inference streams concurrently on one edge GPU makes
//! every kernel slower: SMs, cache, and DRAM bandwidth are shared, and edge
//! parts have little of each. We model this with the standard linear
//! interference law: each of `k` resident streams runs at
//! `1 / (1 + c·(k-1))` of its isolated speed.
//!
//! The Runtime-Aware baseline (paper ref.\[34\], §5.3) *aligns* operators with
//! complementary resource demands, lowering the coefficient `c` — but
//! alignment forces late arrivals to wait for the next alignment barrier,
//! which is exactly the latency pathology SPLIT attacks (paper Figure 1).

use serde::{Deserialize, Serialize};

/// Interference law for concurrent streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Linear interference coefficient (`c` above).
    pub coef: f64,
}

impl ContentionModel {
    /// Model with the given coefficient.
    pub fn new(coef: f64) -> Self {
        assert!(coef >= 0.0, "contention coefficient must be non-negative");
        Self { coef }
    }

    /// Slowdown factor experienced by each of `k` concurrent streams
    /// (`>= 1`; `1.0` for `k <= 1`).
    #[inline]
    pub fn slowdown(&self, k: usize) -> f64 {
        if k <= 1 {
            1.0
        } else {
            1.0 + self.coef * (k as f64 - 1.0)
        }
    }

    /// Rate of progress (inverse slowdown) for each of `k` streams.
    #[inline]
    pub fn rate(&self, k: usize) -> f64 {
        1.0 / self.slowdown(k)
    }

    /// Aggregate device throughput with `k` streams, in units of isolated
    /// streams (`k · rate(k)`). With `coef < 1` this exceeds 1 — concurrency
    /// helps global throughput even as it hurts each stream, which is why
    /// throughput-oriented systems love it and QoS-oriented ones do not.
    #[inline]
    pub fn aggregate_throughput(&self, k: usize) -> f64 {
        k as f64 * self.rate(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_is_free() {
        let m = ContentionModel::new(0.8);
        assert_eq!(m.slowdown(0), 1.0);
        assert_eq!(m.slowdown(1), 1.0);
        assert_eq!(m.rate(1), 1.0);
    }

    #[test]
    fn slowdown_monotone_in_k() {
        let m = ContentionModel::new(0.8);
        for k in 1..10 {
            assert!(m.slowdown(k + 1) > m.slowdown(k));
        }
    }

    #[test]
    fn alignment_reduces_interference() {
        let raw = ContentionModel::new(0.85);
        let aligned = ContentionModel::new(0.35);
        for k in 2..8 {
            assert!(aligned.slowdown(k) < raw.slowdown(k));
        }
    }

    #[test]
    fn throughput_grows_but_sublinearly() {
        let m = ContentionModel::new(0.85);
        for k in 2..8 {
            let agg = m.aggregate_throughput(k);
            assert!(agg > 1.0, "k={k}: {agg}");
            assert!(agg < k as f64);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coef_rejected() {
        ContentionModel::new(-0.1);
    }
}
