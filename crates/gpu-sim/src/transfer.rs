//! Split-boundary transfer costs.
//!
//! When a model is split into ONNX blocks, the intermediate tensor at each
//! boundary leaves one runtime session and enters the next. We charge each
//! *half* of that move (out of the producing block / into the consuming
//! block) separately so that per-block times remain meaningful when the
//! scheduler interleaves other work between blocks.

use crate::device::DeviceConfig;

/// One half (device→host *or* host→device) of moving `bytes` across a block
/// boundary, in microseconds. Zero bytes (the model's own input/output
/// boundary) cost nothing.
#[inline]
pub fn half_boundary_us(bytes: u64, dev: &DeviceConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    bytes as f64 / (dev.boundary_bw_gbps * 1e3)
}

/// Full boundary cost (both halves), in microseconds.
#[inline]
pub fn boundary_transfer_us(bytes: u64, dev: &DeviceConfig) -> f64 {
    2.0 * half_boundary_us(bytes, dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let dev = DeviceConfig::default();
        assert_eq!(half_boundary_us(0, &dev), 0.0);
        assert_eq!(boundary_transfer_us(0, &dev), 0.0);
    }

    #[test]
    fn linear_in_bytes() {
        let dev = DeviceConfig::default();
        let one = boundary_transfer_us(1_000_000, &dev);
        let two = boundary_transfer_us(2_000_000, &dev);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn megabyte_scale_check() {
        // 1 GB/s boundary bandwidth: 1 MB one-way ≈ 1000 µs.
        let dev = DeviceConfig::jetson_nano();
        let t = half_boundary_us(1_000_000, &dev);
        assert!((t - 1000.0).abs() < 1e-6, "got {t}");
    }
}
