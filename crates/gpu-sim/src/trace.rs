//! Execution traces: what ran, where, and when.
//!
//! Traces back the illustrative figures (the paper's Figures 1 and 3) and
//! let tests assert scheduling invariants such as "blocks of one request
//! never interleave with a preemptor's blocks" precisely.

use serde::{Deserialize, Serialize};

/// One executed span on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Human-readable label, e.g. `"req3/resnet50/block1"`.
    pub label: String,
    /// Stream (lane) the span ran on; sequential policies use stream 0.
    pub stream: usize,
    /// Start time, microseconds.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
}

impl TraceEvent {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// An ordered collection of trace events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span.
    pub fn record(&mut self, label: impl Into<String>, stream: usize, start_us: f64, end_us: f64) {
        debug_assert!(end_us >= start_us, "span ends before it starts");
        self.events.push(TraceEvent {
            label: label.into(),
            stream,
            start_us,
            end_us,
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose label contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.label.contains(needle))
            .collect()
    }

    /// Verify that no two events on the same stream overlap in time.
    /// Returns the first offending pair if any.
    pub fn first_overlap(&self) -> Option<(&TraceEvent, &TraceEvent)> {
        let mut by_stream: Vec<Vec<&TraceEvent>> = Vec::new();
        for e in &self.events {
            if by_stream.len() <= e.stream {
                by_stream.resize_with(e.stream + 1, Vec::new);
            }
            by_stream[e.stream].push(e);
        }
        for lane in &mut by_stream {
            lane.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            for w in lane.windows(2) {
                if w[1].start_us < w[0].end_us - 1e-9 {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Render a fixed-width ASCII Gantt chart, one row per distinct label
    /// prefix (up to the first `/`), `width` columns spanning the full
    /// trace. Used by the schedule-gallery example to reproduce the
    /// flavour of the paper's Figure 1.
    pub fn render_ascii(&self, width: usize) -> String {
        if self.events.is_empty() {
            return String::from("(empty trace)\n");
        }
        let t0 = self
            .events
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let t1 = self.events.iter().map(|e| e.end_us).fold(0.0f64, f64::max);
        let span = (t1 - t0).max(1e-9);
        let mut rows: Vec<(String, Vec<char>)> = Vec::new();
        for e in &self.events {
            let key = e.label.split('/').next().unwrap_or(&e.label).to_string();
            let row = match rows.iter().position(|(k, _)| *k == key) {
                Some(i) => i,
                None => {
                    rows.push((key.clone(), vec![' '; width]));
                    rows.len() - 1
                }
            };
            let a = (((e.start_us - t0) / span) * width as f64).floor() as usize;
            let b = (((e.end_us - t0) / span) * width as f64).ceil() as usize;
            let glyph = char::from(b"#*+=%@&ox"[row % 9]);
            for c in a..b.min(width) {
                rows[row].1[c] = glyph;
            }
        }
        let label_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(4);
        let mut out = String::new();
        for (k, cells) in rows {
            out.push_str(&format!("{k:label_w$} |"));
            out.extend(cells);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:label_w$} |{:<w$}|\n",
            "us",
            format!("{t0:.0} .. {t1:.0}"),
            w = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record("a/b0", 0, 0.0, 10.0);
        t.record("b/b0", 0, 10.0, 30.0);
        t.record("a/b1", 0, 30.0, 40.0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.matching("a/").len(), 2);
        assert_eq!(t.events()[1].duration_us(), 20.0);
    }

    #[test]
    fn overlap_detection() {
        let mut ok = Trace::new();
        ok.record("a", 0, 0.0, 10.0);
        ok.record("b", 0, 10.0, 20.0);
        ok.record("c", 1, 5.0, 15.0); // other stream may overlap
        assert!(ok.first_overlap().is_none());

        let mut bad = Trace::new();
        bad.record("a", 0, 0.0, 10.0);
        bad.record("b", 0, 9.0, 20.0);
        let (x, y) = bad.first_overlap().expect("must detect overlap");
        assert_eq!(x.label, "a");
        assert_eq!(y.label, "b");
    }

    #[test]
    fn ascii_render_has_all_rows() {
        let mut t = Trace::new();
        t.record("reqA/b0", 0, 0.0, 50.0);
        t.record("reqB/b0", 0, 50.0, 100.0);
        let s = t.render_ascii(40);
        assert!(s.contains("reqA"));
        assert!(s.contains("reqB"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(Trace::new().render_ascii(10), "(empty trace)\n");
    }
}
