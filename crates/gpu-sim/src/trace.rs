//! Execution traces: what ran, where, and when.
//!
//! Traces back the illustrative figures (the paper's Figures 1 and 3) and
//! let tests assert scheduling invariants such as "blocks of one request
//! never interleave with a preemptor's blocks" precisely.

use serde::{Deserialize, Serialize};
use split_telemetry::Event;

/// Fill glyph for a Gantt row. The first nine rows use the classic
/// high-contrast set; rows beyond that switch to letters and digits so
/// every row keeps a distinct glyph instead of repeating modulo nine.
fn row_glyph(row: usize) -> char {
    const BASE: &[u8; 9] = b"#*+=%@&ox";
    const EXT: &[u8; 62] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    if row < BASE.len() {
        char::from(BASE[row])
    } else {
        char::from(EXT[(row - BASE.len()) % EXT.len()])
    }
}

/// Parse a scheduler span label of the form `model#req` or
/// `model#req/bN` into `(model, request id, block index)`.
///
/// Every policy in `sched` labels its spans this way; the lifecycle
/// exporter uses this to attribute device spans back to requests.
pub fn parse_block_label(label: &str) -> Option<(&str, u64, Option<usize>)> {
    let hash = label.rfind('#')?;
    let (model, rest) = (&label[..hash], &label[hash + 1..]);
    let (req_str, block) = match rest.find('/') {
        Some(slash) => {
            let b = rest[slash + 1..].strip_prefix('b')?.parse().ok()?;
            (&rest[..slash], Some(b))
        }
        None => (rest, None),
    };
    let req = req_str.parse().ok()?;
    Some((model, req, block))
}

/// One executed span on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Human-readable label, e.g. `"req3/resnet50/block1"`.
    pub label: String,
    /// Stream (lane) the span ran on; sequential policies use stream 0.
    pub stream: usize,
    /// Start time, microseconds.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
}

impl TraceEvent {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// One boundary activation transfer attributed to a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Request id the transfer belongs to.
    pub req: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Transfer start time, microseconds.
    pub start_us: f64,
    /// Transfer duration, microseconds (0 when the cost is already
    /// folded into the adjacent block's overhead).
    pub dur_us: f64,
}

/// An ordered collection of trace events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    #[serde(default)]
    transfers: Vec<TransferRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span.
    pub fn record(&mut self, label: impl Into<String>, stream: usize, start_us: f64, end_us: f64) {
        debug_assert!(end_us >= start_us, "span ends before it starts");
        self.events.push(TraceEvent {
            label: label.into(),
            stream,
            start_us,
            end_us,
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Record a boundary activation transfer for request `req`.
    pub fn record_transfer(&mut self, req: u64, bytes: u64, start_us: f64, dur_us: f64) {
        debug_assert!(dur_us >= 0.0, "negative transfer duration");
        self.transfers.push(TransferRecord {
            req,
            bytes,
            start_us,
            dur_us,
        });
    }

    /// All recorded transfers in recording order.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    /// Events whose label contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.label.contains(needle))
            .collect()
    }

    /// Verify that no two events on the same stream overlap in time.
    /// Returns the first offending pair if any.
    pub fn first_overlap(&self) -> Option<(&TraceEvent, &TraceEvent)> {
        let mut by_stream: Vec<Vec<&TraceEvent>> = Vec::new();
        for e in &self.events {
            if by_stream.len() <= e.stream {
                by_stream.resize_with(e.stream + 1, Vec::new);
            }
            by_stream[e.stream].push(e);
        }
        for lane in &mut by_stream {
            lane.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            for w in lane.windows(2) {
                if w[1].start_us < w[0].end_us - 1e-9 {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Export the trace as telemetry [`Event::BlockStart`] /
    /// [`Event::BlockEnd`] pairs, ordered by start time.
    ///
    /// Request ids come from [`parse_block_label`]; spans with
    /// unparseable labels are skipped. Block indices are assigned per
    /// request in start order (matching the `/bN` suffix when present).
    /// Streams are re-assigned by greedy interval coloring — concurrent
    /// spans land on distinct streams even when the recording policy
    /// folded several requests onto one lane — so the export always
    /// satisfies the recorder's no-same-stream-overlap invariant and
    /// renders one clean track per concurrency lane in Perfetto.
    pub fn lifecycle_events(&self) -> Vec<Event> {
        let mut spans: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| parse_block_label(&e.label).is_some())
            .collect();
        spans.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(a.end_us.total_cmp(&b.end_us))
        });

        let mut blocks_seen: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        // Greedy coloring: lane i is free once its last span has ended.
        let mut lane_free_us: Vec<f64> = Vec::new();
        let mut out = Vec::with_capacity(spans.len() * 2);
        for e in spans {
            let (_, req, _) = parse_block_label(&e.label).expect("filtered above");
            let block = {
                let n = blocks_seen.entry(req).or_insert(0);
                let b = *n;
                *n += 1;
                b
            };
            let stream = match lane_free_us
                .iter()
                .position(|&free| free <= e.start_us + 1e-9)
            {
                Some(i) => {
                    lane_free_us[i] = e.end_us;
                    i
                }
                None => {
                    lane_free_us.push(e.end_us);
                    lane_free_us.len() - 1
                }
            } as u32;
            out.push(Event::BlockStart {
                req,
                block,
                stream,
                t_us: e.start_us,
            });
            out.push(Event::BlockEnd {
                req,
                block,
                stream,
                t_us: e.end_us,
            });
        }
        for t in &self.transfers {
            out.push(Event::Transfer {
                req: t.req,
                bytes: t.bytes,
                t_us: t.start_us,
                dur_us: t.dur_us,
            });
        }
        out
    }

    /// Sample device utilization over fixed buckets of `bucket_us`,
    /// returning one [`Event::Utilization`] per bucket (stamped at the
    /// bucket's end). Busy means "at least one stream executing": the
    /// spans' union coverage of each bucket, in `[0, 1]`.
    pub fn utilization_series(&self, bucket_us: f64) -> Vec<Event> {
        assert!(bucket_us > 0.0, "bucket must be positive");
        if self.events.is_empty() {
            return Vec::new();
        }
        let t0 = self
            .events
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let t1 = self.events.iter().map(|e| e.end_us).fold(t0, f64::max);

        // Merge spans across streams into disjoint busy intervals.
        let mut iv: Vec<(f64, f64)> = self.events.iter().map(|e| (e.start_us, e.end_us)).collect();
        iv.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s, e) in iv {
            match merged.last_mut() {
                Some(last) if s <= last.1 + 1e-9 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }

        let buckets = (((t1 - t0) / bucket_us).ceil() as usize).max(1);
        let mut out = Vec::with_capacity(buckets);
        for k in 0..buckets {
            let lo = t0 + k as f64 * bucket_us;
            let hi = lo + bucket_us;
            let busy: f64 = merged
                .iter()
                .map(|&(s, e)| (e.min(hi) - s.max(lo)).max(0.0))
                .sum();
            out.push(Event::Utilization {
                busy: (busy / bucket_us).clamp(0.0, 1.0),
                t_us: hi,
            });
        }
        out
    }

    /// Device-busy time (union of all spans across streams) clipped to
    /// the window `[start_us, end_us]`, in µs. Backs the incident
    /// bundles' device-utilization context.
    pub fn busy_us_between(&self, start_us: f64, end_us: f64) -> f64 {
        if end_us <= start_us {
            return 0.0;
        }
        let mut iv: Vec<(f64, f64)> = self.events.iter().map(|e| (e.start_us, e.end_us)).collect();
        iv.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut busy = 0.0;
        let mut cursor = start_us;
        for (s, e) in iv {
            let lo = s.max(cursor);
            let hi = e.min(end_us);
            if hi > lo {
                busy += hi - lo;
                cursor = hi;
            }
        }
        busy
    }

    /// Render a fixed-width ASCII Gantt chart, one row per distinct label
    /// prefix (up to the first `/`), `width` columns spanning the full
    /// trace. Used by the schedule-gallery example to reproduce the
    /// flavour of the paper's Figure 1.
    pub fn render_ascii(&self, width: usize) -> String {
        if self.events.is_empty() {
            return String::from("(empty trace)\n");
        }
        let t0 = self
            .events
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let t1 = self.events.iter().map(|e| e.end_us).fold(0.0f64, f64::max);
        let span = (t1 - t0).max(1e-9);
        let mut rows: Vec<(String, Vec<char>)> = Vec::new();
        for e in &self.events {
            let key = e.label.split('/').next().unwrap_or(&e.label).to_string();
            let row = match rows.iter().position(|(k, _)| *k == key) {
                Some(i) => i,
                None => {
                    rows.push((key.clone(), vec![' '; width]));
                    rows.len() - 1
                }
            };
            let a = (((e.start_us - t0) / span) * width as f64).floor() as usize;
            let b = (((e.end_us - t0) / span) * width as f64).ceil() as usize;
            let glyph = row_glyph(row);
            for c in a..b.min(width) {
                rows[row].1[c] = glyph;
            }
        }
        let label_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(4);
        let mut out = String::new();
        for (k, cells) in rows {
            out.push_str(&format!("{k:label_w$} |"));
            out.extend(cells);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:label_w$} |{:<w$}|\n",
            "us",
            format!("{t0:.0} .. {t1:.0}"),
            w = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record("a/b0", 0, 0.0, 10.0);
        t.record("b/b0", 0, 10.0, 30.0);
        t.record("a/b1", 0, 30.0, 40.0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.matching("a/").len(), 2);
        assert_eq!(t.events()[1].duration_us(), 20.0);
    }

    #[test]
    fn overlap_detection() {
        let mut ok = Trace::new();
        ok.record("a", 0, 0.0, 10.0);
        ok.record("b", 0, 10.0, 20.0);
        ok.record("c", 1, 5.0, 15.0); // other stream may overlap
        assert!(ok.first_overlap().is_none());

        let mut bad = Trace::new();
        bad.record("a", 0, 0.0, 10.0);
        bad.record("b", 0, 9.0, 20.0);
        let (x, y) = bad.first_overlap().expect("must detect overlap");
        assert_eq!(x.label, "a");
        assert_eq!(y.label, "b");
    }

    #[test]
    fn ascii_render_has_all_rows() {
        let mut t = Trace::new();
        t.record("reqA/b0", 0, 0.0, 50.0);
        t.record("reqB/b0", 0, 50.0, 100.0);
        let s = t.render_ascii(40);
        assert!(s.contains("reqA"));
        assert!(s.contains("reqB"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(Trace::new().render_ascii(10), "(empty trace)\n");
    }

    /// Regression: with more than nine rows the glyph used to repeat
    /// modulo nine, so row 9 rendered with row 0's `#` and became
    /// indistinguishable from it. Every row must get a distinct glyph.
    #[test]
    fn rows_beyond_nine_get_distinct_glyphs() {
        let mut t = Trace::new();
        let n = 12;
        for i in 0..n {
            t.record(
                format!("req{i:02}/b0"),
                0,
                i as f64 * 10.0,
                i as f64 * 10.0 + 10.0,
            );
        }
        let s = t.render_ascii(n * 4);
        let mut glyphs = Vec::new();
        for line in s.lines().take(n) {
            let cells = line.split('|').nth(1).expect("row body");
            let g = cells.chars().find(|c| *c != ' ').expect("filled cell");
            glyphs.push(g);
        }
        let mut unique = glyphs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), n, "duplicate glyphs in {glyphs:?}\n{s}");
    }

    #[test]
    fn label_parsing() {
        assert_eq!(parse_block_label("vgg19#3/b2"), Some(("vgg19", 3, Some(2))));
        assert_eq!(
            parse_block_label("resnet50#17"),
            Some(("resnet50", 17, None))
        );
        assert_eq!(parse_block_label("no-request-id"), None);
        assert_eq!(parse_block_label("m#x/b1"), None);
    }

    #[test]
    fn lifecycle_events_pair_up_and_avoid_lane_collisions() {
        let mut t = Trace::new();
        t.record("long#0/b0", 0, 0.0, 10.0);
        t.record("short#1/b0", 0, 10.0, 15.0);
        t.record("long#0/b1", 0, 15.0, 25.0);
        // Concurrent span recorded on the *same* lane by a fluid policy.
        t.record("other#2", 0, 5.0, 12.0);
        let ev = t.lifecycle_events();
        assert_eq!(ev.len(), 8);
        // Block indices follow per-request start order.
        let blocks: Vec<(u64, usize)> = ev
            .iter()
            .filter_map(|e| match e {
                Event::BlockStart { req, block, .. } => Some((*req, *block)),
                _ => None,
            })
            .collect();
        assert_eq!(blocks, vec![(0, 0), (2, 0), (1, 0), (0, 1)]);
        // Coloring pushed the overlapping span onto its own stream.
        let streams: std::collections::HashMap<u64, u32> = ev
            .iter()
            .filter_map(|e| match e {
                Event::BlockStart { req, stream, .. } => Some((*req, *stream)),
                _ => None,
            })
            .collect();
        assert_ne!(streams[&2], streams[&0]);
    }

    #[test]
    fn transfers_export_as_lifecycle_events() {
        let mut t = Trace::new();
        t.record("m#0/b0", 0, 0.0, 10.0);
        t.record_transfer(0, 4096, 10.0, 0.0);
        t.record("m#0/b1", 0, 10.0, 20.0);
        assert_eq!(t.transfers().len(), 1);
        assert_eq!(t.transfers()[0].bytes, 4096);
        let ev = t.lifecycle_events();
        let transfers: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, Event::Transfer { .. }))
            .collect();
        assert_eq!(transfers.len(), 1);
        match transfers[0] {
            Event::Transfer {
                req,
                bytes,
                t_us,
                dur_us,
            } => {
                assert_eq!((*req, *bytes), (0, 4096));
                assert_eq!((*t_us, *dur_us), (10.0, 0.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn busy_between_unions_overlaps_and_clips() {
        let mut t = Trace::new();
        t.record("a#0", 0, 0.0, 10.0);
        t.record("b#1", 1, 5.0, 12.0); // overlap [5,10] counted once
        t.record("c#2", 0, 20.0, 30.0);
        assert!((t.busy_us_between(0.0, 30.0) - 22.0).abs() < 1e-9);
        // Clipped window cuts both ends.
        assert!((t.busy_us_between(6.0, 25.0) - 11.0).abs() < 1e-9);
        // Degenerate / empty windows.
        assert_eq!(t.busy_us_between(10.0, 10.0), 0.0);
        assert_eq!(t.busy_us_between(13.0, 19.0), 0.0);
    }

    #[test]
    fn utilization_series_measures_coverage() {
        let mut t = Trace::new();
        t.record("a#0", 0, 0.0, 10.0);
        t.record("b#1", 1, 5.0, 10.0); // overlaps — union still [0, 10]
        t.record("c#2", 0, 15.0, 20.0);
        let u = t.utilization_series(10.0);
        assert_eq!(u.len(), 2);
        match (&u[0], &u[1]) {
            (
                Event::Utilization { busy: b0, t_us: t0 },
                Event::Utilization { busy: b1, t_us: t1 },
            ) => {
                assert!((b0 - 1.0).abs() < 1e-9, "first bucket fully busy: {b0}");
                assert!((b1 - 0.5).abs() < 1e-9, "second bucket half busy: {b1}");
                assert_eq!((*t0, *t1), (10.0, 20.0));
            }
            other => panic!("unexpected events {other:?}"),
        }
    }
}
