//! Memoized per-(graph, device) cost tables.
//!
//! Profiling one split candidate needs three ingredients: the sum of
//! operator times inside each block, the transfer cost at each block
//! boundary, and the vanilla (unsplit) model time. All three are pure
//! functions of the *(graph, device)* pair — only the cut positions vary
//! between candidates. A [`CostTable`] precomputes them once:
//!
//! * `op_prefix_us[i]` — the left-fold prefix sum of operator times, so
//!   any block body `[start, end)` is one subtraction;
//! * `half_boundary_us[c]` — the one-way transfer cost at every cut
//!   position, from [`Graph::all_boundary_bytes`] (`O(M)` total);
//! * `vanilla_us` — the unsplit model time.
//!
//! This turns candidate profiling from `O(ops)` into `O(cuts)`: the GA
//! builds one table per `evolve` and every generation, worker thread, and
//! cache miss reads it.
//!
//! ## Bit-identity
//!
//! The table reproduces [`crate::kernel::split_block_times_us`]'s float
//! operations *in the same order*: the prefix vector is the same left fold
//! the direct path used, `f64::sum` is the same fold (so `vanilla_us`
//! matches [`crate::kernel::block_time_us`] bitwise), boundary bytes are
//! exact `u64`s (`all_boundary_bytes` equals pointwise `boundary_bytes` —
//! unit-tested in `dnn-graph`), and each block's time is assembled as
//! `overhead + lead + body + trail` exactly as before. Table-backed
//! profiles are therefore **bit-identical** to direct ones — audited
//! repo-wide by `split-analyze`'s `SA107` check and a profiler property
//! test.

use crate::device::DeviceConfig;
use crate::kernel::op_times_us;
use crate::transfer::half_boundary_us;
use dnn_graph::Graph;
use std::hash::{Hash, Hasher};

/// Precomputed candidate-profiling costs for one (graph, device) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// Prefix sums of operator times: `op_prefix_us[i]` = time of ops
    /// `0..i`, µs. Length `op_count + 1`.
    op_prefix_us: Vec<f64>,
    /// Live activation bytes crossing each cut position `0..=op_count`
    /// (0 at both ends — the model input/output is handled outside
    /// splitting).
    boundary_bytes: Vec<u64>,
    /// One-way transfer cost at each cut position, µs.
    half_boundary_us: Vec<f64>,
    /// Fixed per-block dispatch overhead, µs.
    block_overhead_us: f64,
    /// Unsplit model time, µs (bitwise equal to
    /// [`crate::kernel::block_time_us`]).
    vanilla_us: f64,
    /// Identity of the (graph, device) pair this table was built from.
    fingerprint: u64,
}

impl CostTable {
    /// Build the table: one `O(M)` pass over the graph.
    pub fn build(graph: &Graph, dev: &DeviceConfig) -> Self {
        let ops = op_times_us(graph, dev);
        let mut op_prefix_us = Vec::with_capacity(ops.len() + 1);
        op_prefix_us.push(0.0);
        for t in &ops {
            op_prefix_us.push(op_prefix_us.last().unwrap() + t);
        }
        // `iter().sum::<f64>()` is the same left fold from 0.0 as the
        // prefix vector, so this reproduces `block_time_us` bitwise.
        let vanilla_us = op_prefix_us[ops.len()] + dev.block_overhead_us;
        let boundary_bytes = graph.all_boundary_bytes();
        let half = boundary_bytes
            .iter()
            .map(|&b| half_boundary_us(b, dev))
            .collect();
        Self {
            op_prefix_us,
            boundary_bytes,
            half_boundary_us: half,
            block_overhead_us: dev.block_overhead_us,
            vanilla_us,
            fingerprint: fingerprint(graph, dev),
        }
    }

    /// Number of operators in the underlying graph.
    pub fn op_count(&self) -> usize {
        self.op_prefix_us.len() - 1
    }

    /// Unsplit model time, µs.
    pub fn vanilla_us(&self) -> f64 {
        self.vanilla_us
    }

    /// Live bytes crossing cut position `c` (`0..=op_count`).
    pub fn boundary_bytes(&self, c: usize) -> u64 {
        self.boundary_bytes[c]
    }

    /// Hash identifying the (graph, device) pair this table models; used
    /// as the profile-cache key component that keeps two deployments from
    /// sharing entries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Per-block execution times for the split at `cuts` — the `O(cuts)`
    /// replacement for [`crate::kernel::split_block_times_us`], bitwise
    /// identical to it.
    ///
    /// `cuts` must be strictly increasing within `1..op_count` (the
    /// invariant `dnn_graph::SplitSpec` enforces).
    pub fn split_block_times_us(&self, cuts: &[usize]) -> Vec<f64> {
        let m = self.op_count();
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0usize;
        for i in 0..=cuts.len() {
            let end = if i < cuts.len() { cuts[i] } else { m };
            let body = self.op_prefix_us[end] - self.op_prefix_us[start];
            let lead = self.half_boundary_us[start];
            let trail = self.half_boundary_us[end];
            out.push(self.block_overhead_us + lead + body + trail);
            start = end;
        }
        out
    }
}

/// Hash of everything the cost model reads from the pair: graph identity
/// (name, per-op kind/flops/bytes/wiring, time scale) and every
/// `DeviceConfig` field (`f64`s via `to_bits` so the hash is exact).
pub fn fingerprint(graph: &Graph, dev: &DeviceConfig) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    graph.name.hash(&mut h);
    graph.time_scale().to_bits().hash(&mut h);
    graph.op_count().hash(&mut h);
    for id in 0..graph.op_count() {
        let op = graph.op(id);
        op.kind.hash(&mut h);
        op.flops.hash(&mut h);
        op.output_bytes().hash(&mut h);
        op.weight_bytes.hash(&mut h);
        graph.inputs_of(id).hash(&mut h);
    }
    for f in [
        dev.peak_gflops,
        dev.mem_bw_gbps,
        dev.launch_overhead_us,
        dev.boundary_bw_gbps,
        dev.block_overhead_us,
        dev.contention_coef,
        dev.aligned_contention_coef,
    ] {
        f.to_bits().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::block_time_us;
    use dnn_graph::{GraphBuilder, SplitSpec, TensorShape};

    /// The pre-table implementation of `split_block_times_us`, kept here
    /// verbatim as the bit-identity reference (the public function now
    /// delegates to the table, so comparing against it would be circular).
    fn reference_split_times(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> Vec<f64> {
        let ops = op_times_us(graph, dev);
        let mut prefix = Vec::with_capacity(ops.len() + 1);
        prefix.push(0.0);
        for t in &ops {
            prefix.push(prefix.last().unwrap() + t);
        }
        spec.blocks(graph)
            .iter()
            .map(|b| {
                let body = prefix[b.end] - prefix[b.start];
                let lead = half_boundary_us(b.input_transfer_bytes(graph), dev);
                let trail = half_boundary_us(b.output_transfer_bytes(graph), dev);
                dev.block_overhead_us + lead + body + trail
            })
            .collect()
    }

    fn toy(name: &str, width: u64) -> Graph {
        let mut b = GraphBuilder::new(name, TensorShape::chw(3, 64, 64));
        let x = b.source();
        let c1 = b.conv(&x, width, 3, 1, 1);
        let r1 = b.relu(&c1);
        let p = b.maxpool(&r1, 2, 2, 0);
        let c2 = b.conv(&p, width * 2, 3, 1, 1);
        let r2 = b.relu(&c2);
        let g = b.gavgpool(&r2);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn vanilla_matches_direct_bitwise() {
        let g = toy("ct", 32);
        for dev in [DeviceConfig::jetson_nano(), DeviceConfig::edge_server()] {
            let t = CostTable::build(&g, &dev);
            assert_eq!(t.vanilla_us().to_bits(), block_time_us(&g, &dev).to_bits());
        }
    }

    #[test]
    fn block_times_match_direct_bitwise() {
        let g = toy("ct", 32);
        let dev = DeviceConfig::default();
        let t = CostTable::build(&g, &dev);
        for cuts in [vec![3], vec![1, 5], vec![2, 4, 6], vec![1, 2, 3, 4, 5]] {
            let spec = SplitSpec::new(&g, cuts.clone()).unwrap();
            let direct = reference_split_times(&g, &spec, &dev);
            let tabled = t.split_block_times_us(&cuts);
            assert_eq!(direct.len(), tabled.len());
            for (a, b) in direct.iter().zip(&tabled) {
                assert_eq!(a.to_bits(), b.to_bits(), "cuts {cuts:?}");
            }
        }
    }

    #[test]
    fn fingerprint_separates_graphs_and_devices() {
        let g1 = toy("a", 32);
        let g2 = toy("b", 32); // same structure, different name
        let g3 = toy("a", 48); // same name, different weights
        let nano = DeviceConfig::jetson_nano();
        let server = DeviceConfig::edge_server();
        let f = |g: &Graph, d: &DeviceConfig| CostTable::build(g, d).fingerprint();
        assert_ne!(f(&g1, &nano), f(&g2, &nano));
        assert_ne!(f(&g1, &nano), f(&g3, &nano));
        assert_ne!(f(&g1, &nano), f(&g1, &server));
        // Deterministic: same pair, same fingerprint.
        assert_eq!(f(&g1, &nano), f(&g1, &nano));
    }

    #[test]
    fn time_scale_changes_fingerprint() {
        let mut g = toy("a", 32);
        let dev = DeviceConfig::default();
        let before = fingerprint(&g, &dev);
        g.set_time_scale(0.5);
        assert_ne!(before, fingerprint(&g, &dev));
    }
}
