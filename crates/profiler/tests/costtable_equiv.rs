//! Property test: the memoized cost-table profiling path is bit-identical
//! to the direct per-candidate arithmetic, for random valid split specs
//! over real zoo models, at both pool widths the CI matrix exercises.
//!
//! This is the per-candidate counterpart of split-analyze's SA107 audit:
//! `f64::to_bits` on every float field, so even a 1-ulp reassociation in
//! the table's prefix sums would fail, not just a tolerance check.

use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use model_zoo::ModelId;
use profiler::{profile_split, profile_split_on, BlockProfile, ProfileCache};
use proptest::prelude::*;

const MODELS: [ModelId; 4] = [
    ModelId::ResNet50,
    ModelId::Gpt2,
    ModelId::Vgg19,
    ModelId::GoogLeNet,
];

/// Map arbitrary raw integers into a strictly increasing cut vector
/// inside `1..op_count`. Collisions collapse (fewer cuts), which is fine:
/// any non-empty result is a valid spec.
fn cuts_from_raw(raw: &[u64], op_count: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = raw
        .iter()
        .map(|r| 1 + (*r as usize) % (op_count - 1))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

fn assert_bit_identical(direct: &BlockProfile, table: &BlockProfile, what: &str) {
    assert_eq!(direct.cuts, table.cuts, "{what}: cuts");
    assert_eq!(
        direct.block_times_us.len(),
        table.block_times_us.len(),
        "{what}: block count"
    );
    for (i, (a, b)) in direct
        .block_times_us
        .iter()
        .zip(&table.block_times_us)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: block {i} ({a} vs {b})");
    }
    for (field, a, b) in [
        ("vanilla_us", direct.vanilla_us, table.vanilla_us),
        (
            "overhead_ratio",
            direct.overhead_ratio,
            table.overhead_ratio,
        ),
        ("std_us", direct.std_us, table.std_us),
        ("mean_us", direct.mean_us, table.mean_us),
        ("range_pct", direct.range_pct, table.range_pct),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {field} ({a} vs {b})");
    }
}

fn check_spec(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) {
    let direct = profile_split(graph, spec, dev);
    let table = CostTable::build(graph, dev);
    assert_bit_identical(&direct, &profile_split_on(&table, spec), "profile_split_on");
    let cache = ProfileCache::new();
    for threads in [1usize, 8] {
        let via_cache = rayon::with_threads(threads, || cache.profile_on(&table, spec));
        assert_bit_identical(&direct, &via_cache, &format!("cache@{threads}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random valid specs over real zoo models: table-backed profiles
    /// (with and without the cache, at 1 and 8 pool workers) match the
    /// direct arithmetic bit for bit.
    #[test]
    fn table_backed_profiles_are_bit_identical(
        model_idx in 0usize..MODELS.len(),
        raw in proptest::collection::vec(0u64..u64::MAX, 1..6),
    ) {
        let dev = DeviceConfig::default();
        let graph = MODELS[model_idx].build_calibrated(&dev);
        let cuts = cuts_from_raw(&raw, graph.op_count());
        let spec = SplitSpec::new(&graph, cuts).expect("cuts are in range and increasing");
        check_spec(&graph, &spec, &dev);
    }
}

/// Degenerate shapes the random generator is unlikely to hit: the
/// earliest and latest legal single cuts, and a maximally uneven spec.
#[test]
fn boundary_cuts_are_bit_identical() {
    let dev = DeviceConfig::default();
    for id in MODELS {
        let graph = id.build_calibrated(&dev);
        let m = graph.op_count();
        for cuts in [vec![1], vec![m - 1], vec![1, 2, m - 1]] {
            let spec = SplitSpec::new(&graph, cuts).expect("valid boundary cuts");
            check_spec(&graph, &spec, &dev);
        }
    }
}
