#![warn(missing_docs)]
//! # profiler — offline profiling of models, blocks, and split candidates
//!
//! SPLIT's offline stage (paper §3.1) profiles split candidates: it measures
//! each block's execution time, the *splitting overhead* (extra time the
//! blocks take versus the vanilla model, footnote 2), and the *standard
//! deviation of block execution time* (the evenness/jitter proxy).
//!
//! The paper reports that exhaustively profiling, e.g., all 287,980 3-block
//! candidates of ResNet50 would take over 80 hours on device (§2.2). On our
//! simulated device a profile is arithmetic, but the crate keeps the shape
//! of the real system: an explicit [`cache::ProfileCache`] so repeated
//! candidates are never re-measured, and rayon-parallel sweeps
//! ([`sweep`]) for the Figure 2 heatmaps.

pub mod block_profile;
pub mod cache;
pub mod op_report;
pub mod stats;
pub mod sweep;

pub use block_profile::{profile_split, profile_split_on, profile_unsplit, BlockProfile};
pub use cache::ProfileCache;
pub use op_report::{op_report, KindTime, OpReport};
pub use stats::{mean, population_std, range_pct};
pub use sweep::{sweep_one_cut, sweep_two_cuts, SweepPoint};
