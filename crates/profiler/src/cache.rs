//! Profile memoization.
//!
//! On the paper's real testbed a profile costs an on-device run (§3.1:
//! "execution time can be profiled within 1s"); the genetic algorithm
//! re-encounters candidates constantly (elites survive generations,
//! crossover recreates parents). The cache makes every candidate cost at
//! most one measurement. It is `Sync` so rayon can evaluate a whole
//! population in parallel against one cache.

use crate::block_profile::{profile_split, BlockProfile};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::DeviceConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A concurrent memo table from cut vectors to profiles.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<Vec<usize>, BlockProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profile `spec`, measuring only on a cache miss.
    pub fn profile(&self, graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> BlockProfile {
        if let Some(hit) = self.map.lock().unwrap().get(spec.cuts()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Measure outside the lock: profiles are deterministic, so a racing
        // duplicate measurement is harmless and the lock stays uncontended.
        let p = profile_split(graph, spec, dev);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap()
            .insert(spec.cuts().to_vec(), p.clone());
        p
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct candidates measured.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("c", TensorShape::chw(4, 16, 16));
        let x = b.source();
        let mut t = b.conv(&x, 8, 3, 1, 1);
        for _ in 0..6 {
            t = b.relu(&t);
        }
        b.finish()
    }

    #[test]
    fn caches_repeat_queries() {
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let spec = SplitSpec::new(&g, vec![3]).unwrap();
        let a = cache.profile(&g, &spec, &dev);
        let b = cache.profile(&g, &spec, &dev);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_candidates_get_distinct_entries() {
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        for c in 1..6 {
            cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().0, 0);
    }

    #[test]
    fn parallel_use_is_safe() {
        use rayon::prelude::*;
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let results: Vec<BlockProfile> = (0..64)
            .into_par_iter()
            .map(|i| {
                let c = 1 + (i % 6);
                cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev)
            })
            .collect();
        assert_eq!(results.len(), 64);
        assert_eq!(cache.len(), 6);
    }
}
