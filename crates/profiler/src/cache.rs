//! Profile memoization.
//!
//! On the paper's real testbed a profile costs an on-device run (§3.1:
//! "execution time can be profiled within 1s"); the genetic algorithm
//! re-encounters candidates constantly (elites survive generations,
//! crossover recreates parents). The cache makes every candidate cost
//! **exactly** one measurement, even when a whole population races into it
//! through the rayon pool:
//!
//! * entries are keyed by the **(graph, device) fingerprint plus the cut
//!   vector** — the cuts alone would let one cache shared across two
//!   deployments hand back profiles of the wrong model (regression-tested
//!   below),
//! * the map is **sharded** (16 shards keyed by a hash of the full key)
//!   so concurrent lookups of distinct candidates rarely contend on one
//!   lock, and
//! * a shard entry is either `Ready` (measured) or `Pending` (someone is
//!   measuring right now). A thread that finds `Pending` blocks on that
//!   entry's condvar instead of measuring a duplicate — the in-flight
//!   dedup the old measure-outside-the-lock version lacked, which let two
//!   racing threads double-measure and double-count `misses`.
//!
//! Invariant (checked by tests and model-checked by `split-analyze`'s
//! `profiler.cache` machine, SA204 — DESIGN.md §14): once all in-flight
//! calls return, `misses == len()` — one miss per distinct candidate,
//! never more. The model explores the claim-then-measure CAS protocol
//! under weak memory (stale reads included), with a check-then-measure
//! negative fixture proving the checker would catch the pre-fix
//! double-measure.

use crate::block_profile::{profile_split_on, BlockProfile};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{costtable, CostTable, DeviceConfig};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shard count; a power of two keeps the reduction a mask. 16 shards is
/// plenty for the pool's worker counts (≤ a few dozen threads).
const SHARDS: usize = 16;

/// Cache key: the (graph, device) fingerprint plus the cut vector. The
/// fingerprint component fixes the latent collision bug where one cache
/// shared across two deployments returned profiles of the wrong model —
/// the key used to be the cuts alone.
type Key = (u64, Vec<usize>);

/// A measurement in flight: the winner fills `done` and notifies; losers
/// wait instead of re-measuring.
#[derive(Debug, Default)]
struct InFlight {
    done: Mutex<Option<BlockProfile>>,
    cv: Condvar,
}

/// One shard entry.
#[derive(Debug)]
enum Slot {
    /// Measured and memoized.
    Ready(BlockProfile),
    /// Being measured by some thread right now.
    Pending(Arc<InFlight>),
}

/// A concurrent memo table from (graph, device, cut vector) to profiles.
#[derive(Debug)]
pub struct ProfileCache {
    shards: Vec<Mutex<HashMap<Key, Slot>>>,
    /// Memoized cost tables by fingerprint, for callers using the
    /// convenience [`ProfileCache::profile`] entry point (hot loops build
    /// their table once and call [`ProfileCache::profile_on`]).
    tables: Mutex<HashMap<u64, Arc<CostTable>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ProfileCache {
    fn default() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            tables: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

fn shard_of(fingerprint: u64, cuts: &[usize]) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    fingerprint.hash(&mut h);
    cuts.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

impl ProfileCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profile `spec`, measuring at most once per distinct
    /// (graph, device, cut vector).
    ///
    /// Convenience entry point: fingerprints the pair and memoizes its
    /// [`CostTable`] internally. Hot loops that profile many candidates of
    /// one pair should build the table once ([`CostTable::build`]) and call
    /// [`ProfileCache::profile_on`], which skips the per-call fingerprint
    /// hash.
    pub fn profile(&self, graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> BlockProfile {
        let table = self.table_for(graph, dev);
        self.profile_on(&table, spec)
    }

    /// The memoized cost table for a (graph, device) pair.
    pub fn table_for(&self, graph: &Graph, dev: &DeviceConfig) -> Arc<CostTable> {
        let fp = costtable::fingerprint(graph, dev);
        let mut tables = self.tables.lock().unwrap();
        tables
            .entry(fp)
            .or_insert_with(|| Arc::new(CostTable::build(graph, dev)))
            .clone()
    }

    /// Profile `spec` against a prebuilt table, measuring at most once per
    /// distinct (fingerprint, cut vector).
    ///
    /// Concurrent callers of the same candidate are deduplicated: the
    /// first claims the entry and measures; the rest block until the
    /// measurement lands and count as cache hits (they performed none).
    pub fn profile_on(&self, table: &CostTable, spec: &SplitSpec) -> BlockProfile {
        let fp = table.fingerprint();
        let shard = &self.shards[shard_of(fp, spec.cuts())];
        let inflight = {
            let mut map = shard.lock().unwrap();
            match map.get(&(fp, spec.cuts().to_vec())) {
                Some(Slot::Ready(p)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return p.clone();
                }
                Some(Slot::Pending(f)) => Some(f.clone()),
                None => {
                    // Claim the key while holding the shard lock — this is
                    // the double-checked step that makes duplicate
                    // measurement impossible.
                    map.insert(
                        (fp, spec.cuts().to_vec()),
                        Slot::Pending(Arc::new(InFlight::default())),
                    );
                    None
                }
            }
        };

        if let Some(flight) = inflight {
            // Someone else is measuring this exact candidate: wait for it.
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            return done.clone().expect("notified with a filled slot");
        }

        // We won the claim: measure outside the shard lock (the expensive
        // part stays uncontended), then publish.
        let p = profile_split_on(table, spec);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().unwrap();
        let prev = map.insert((fp, spec.cuts().to_vec()), Slot::Ready(p.clone()));
        drop(map);
        match prev {
            Some(Slot::Pending(flight)) => {
                *flight.done.lock().unwrap() = Some(p.clone());
                flight.cv.notify_all();
            }
            _ => unreachable!("claimed entry must still be pending"),
        }
        p
    }

    /// `(hits, misses)` so far. A waiter that was deduplicated against an
    /// in-flight measurement counts as a hit.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct candidates measured (in-flight entries are not
    /// counted until their measurement lands, so `misses == len()` holds
    /// whenever no call is in flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_profile::profile_split;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("c", TensorShape::chw(4, 16, 16));
        let x = b.source();
        let mut t = b.conv(&x, 8, 3, 1, 1);
        for _ in 0..6 {
            t = b.relu(&t);
        }
        b.finish()
    }

    #[test]
    fn caches_repeat_queries() {
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let spec = SplitSpec::new(&g, vec![3]).unwrap();
        let a = cache.profile(&g, &spec, &dev);
        let b = cache.profile(&g, &spec, &dev);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_candidates_get_distinct_entries() {
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        for c in 1..6 {
            cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().0, 0);
    }

    #[test]
    fn parallel_use_is_safe() {
        use rayon::prelude::*;
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let results: Vec<BlockProfile> = (0..64)
            .into_par_iter()
            .map(|i| {
                let c = 1 + (i % 6);
                cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev)
            })
            .collect();
        assert_eq!(results.len(), 64);
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn stats_invariant_misses_equal_len() {
        // The satellite invariant: after any quiescent sequence of calls,
        // one miss per distinct candidate and hits account for the rest.
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        for i in 0..40usize {
            let c = 1 + (i % 5);
            cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses as usize, cache.len());
        assert_eq!(hits + misses, 40);
    }

    #[test]
    fn concurrent_stress_never_double_measures() {
        // Many pool workers hammering few keys: the in-flight dedup must
        // keep `misses == len()` exactly — the old measure-outside-the-lock
        // cache double-counted here.
        use rayon::prelude::*;
        let g = chain();
        let dev = DeviceConfig::default();
        for round in 0..8 {
            let cache = ProfileCache::new();
            let n = 256usize;
            let keys = 4usize;
            rayon::with_threads(8, || {
                (0..n)
                    .into_par_iter()
                    .map(|i| {
                        // Rotate which key goes first each round to vary the
                        // racing pattern.
                        let c = 1 + ((i + round) % keys);
                        cache.profile(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev)
                    })
                    .for_each(drop);
            });
            let (hits, misses) = cache.stats();
            assert_eq!(
                misses as usize, keys,
                "round {round}: duplicate measurement"
            );
            assert_eq!(cache.len(), keys, "round {round}");
            assert_eq!(hits as usize, n - keys, "round {round}");
        }
    }

    #[test]
    fn identical_cuts_on_different_models_get_distinct_entries() {
        // The latent key-collision bug: with cuts-only keys, profiling
        // model B after model A through one shared cache returned A's
        // profile for B. The fingerprint key component must keep them
        // (and distinct devices of one model) apart.
        let a = chain();
        let b = {
            let mut bb = GraphBuilder::new("other", TensorShape::chw(4, 32, 32));
            let x = bb.source();
            let mut t = bb.conv(&x, 16, 3, 1, 1);
            for _ in 0..6 {
                t = bb.relu(&t);
            }
            bb.finish()
        };
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let spec_a = SplitSpec::new(&a, vec![3]).unwrap();
        let spec_b = SplitSpec::new(&b, vec![3]).unwrap();
        let pa = cache.profile(&a, &spec_a, &dev);
        let pb = cache.profile(&b, &spec_b, &dev);
        assert_eq!(cache.len(), 2, "identical cuts must not collide");
        assert_eq!(cache.stats(), (0, 2));
        assert_ne!(pa, pb, "distinct models must yield distinct profiles");
        assert_eq!(pb, profile_split(&b, &spec_b, &dev));
        // Same model, different device: also distinct.
        let server = DeviceConfig::edge_server();
        let pa_server = cache.profile(&a, &spec_a, &server);
        assert_eq!(cache.len(), 3);
        assert_ne!(pa, pa_server);
    }

    #[test]
    fn profile_on_shares_entries_with_profile() {
        // The two entry points address the same memo: a profile_on after a
        // profile of the same candidate is a hit, not a re-measurement.
        let g = chain();
        let dev = DeviceConfig::default();
        let cache = ProfileCache::new();
        let spec = SplitSpec::new(&g, vec![3]).unwrap();
        let a = cache.profile(&g, &spec, &dev);
        let table = CostTable::build(&g, &dev);
        let b = cache.profile_on(&table, &spec);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_results_match_sequential() {
        use rayon::prelude::*;
        let g = chain();
        let dev = DeviceConfig::default();
        let seq: Vec<BlockProfile> = (0..32usize)
            .map(|i| {
                let cache = ProfileCache::new();
                cache.profile(&g, &SplitSpec::new(&g, vec![1 + (i % 6)]).unwrap(), &dev)
            })
            .collect();
        let cache = ProfileCache::new();
        let par: Vec<BlockProfile> = rayon::with_threads(8, || {
            (0..32usize)
                .into_par_iter()
                .map(|i| cache.profile(&g, &SplitSpec::new(&g, vec![1 + (i % 6)]).unwrap(), &dev))
                .collect()
        });
        assert_eq!(par, seq);
    }
}
