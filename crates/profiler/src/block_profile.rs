//! Profiling one split candidate: block times, overhead, evenness.

use crate::stats::{mean, population_std, range_pct};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{block_time_us, CostTable, DeviceConfig};
use serde::{Deserialize, Serialize};

/// The measured profile of one split candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockProfile {
    /// The cut positions profiled.
    pub cuts: Vec<usize>,
    /// Per-block execution times, microseconds.
    pub block_times_us: Vec<f64>,
    /// Vanilla (unsplit) model time, microseconds.
    pub vanilla_us: f64,
    /// Splitting overhead ratio (footnote 2): `(Σ blocks − vanilla) / vanilla`.
    pub overhead_ratio: f64,
    /// Standard deviation of block times, microseconds — the evenness /
    /// jitter proxy (σ in Eq. 2).
    pub std_us: f64,
    /// Mean block time, microseconds.
    pub mean_us: f64,
    /// `(max − min) / mean` of block times, percent (Table 3).
    pub range_pct: f64,
}

impl BlockProfile {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_times_us.len()
    }

    /// Total time of the split model run back to back, microseconds.
    pub fn total_us(&self) -> f64 {
        self.block_times_us.iter().sum()
    }
}

/// Profile the unsplit model (one block, zero overhead by definition).
pub fn profile_unsplit(graph: &Graph, dev: &DeviceConfig) -> BlockProfile {
    let t = block_time_us(graph, dev);
    BlockProfile {
        cuts: Vec::new(),
        block_times_us: vec![t],
        vanilla_us: t,
        overhead_ratio: 0.0,
        std_us: 0.0,
        mean_us: t,
        range_pct: 0.0,
    }
}

/// Assemble a [`BlockProfile`] from measured block times. This is the one
/// place the derived statistics are computed, so the table-backed and
/// direct profiling paths are *structurally* bit-identical: they feed the
/// same inputs through the same float operations in the same order.
fn profile_from_block_times(
    cuts: Vec<usize>,
    block_times_us: Vec<f64>,
    vanilla_us: f64,
) -> BlockProfile {
    let total: f64 = block_times_us.iter().sum();
    BlockProfile {
        cuts,
        overhead_ratio: (total - vanilla_us) / vanilla_us,
        std_us: population_std(&block_times_us),
        mean_us: mean(&block_times_us),
        range_pct: range_pct(&block_times_us),
        block_times_us,
        vanilla_us,
    }
}

/// Profile a split candidate against a prebuilt [`CostTable`] — `O(cuts)`
/// per candidate. Bit-identical to [`profile_split`] on the table's
/// (graph, device) pair; the hot path for the GA, sweeps, and re-planning.
pub fn profile_split_on(table: &CostTable, spec: &SplitSpec) -> BlockProfile {
    profile_from_block_times(
        spec.cuts().to_vec(),
        table.split_block_times_us(spec.cuts()),
        table.vanilla_us(),
    )
}

/// Profile a split candidate on the device.
///
/// One-shot convenience that builds a throwaway [`CostTable`]; profile
/// many candidates of one (graph, device) pair via [`profile_split_on`]
/// or [`crate::ProfileCache`] instead.
pub fn profile_split(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> BlockProfile {
    profile_split_on(&CostTable::build(graph, dev), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("cnn", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let mut t = b.conv(&x, 32, 3, 2, 1);
        for ch in [32u64, 64, 64, 128, 128] {
            let c = b.conv(&t, ch, 3, 1, 1);
            t = b.relu(&c);
        }
        let g = b.gavgpool(&t);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn unsplit_profile_is_trivial() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let p = profile_unsplit(&g, &dev);
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.overhead_ratio, 0.0);
        assert_eq!(p.std_us, 0.0);
        assert_eq!(p.total_us(), p.vanilla_us);
    }

    #[test]
    fn split_profile_consistency() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let spec = SplitSpec::new(&g, vec![4, 8]).unwrap();
        let p = profile_split(&g, &spec, &dev);
        assert_eq!(p.block_count(), 3);
        assert!(p.overhead_ratio > 0.0, "splitting must cost something");
        assert!(p.total_us() > p.vanilla_us);
        assert!(p.std_us >= 0.0);
        assert!((p.mean_us * 3.0 - p.total_us()).abs() < 1e-9);
    }

    #[test]
    fn more_blocks_more_overhead_on_chain() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let two = profile_split(&g, &SplitSpec::new(&g, vec![5]).unwrap(), &dev);
        let three = profile_split(&g, &SplitSpec::new(&g, vec![4, 8]).unwrap(), &dev);
        assert!(three.overhead_ratio > two.overhead_ratio);
    }
}
