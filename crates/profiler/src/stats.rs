//! Small statistics helpers used throughout the profiling pipeline.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (the paper's σ over block times); 0 for
/// fewer than two samples.
pub fn population_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Spread of block times relative to their mean:
/// `(max - min) / mean`, in percent — Table 3's "Range(Percentage)".
pub fn range_pct(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let m = mean(xs);
    if m <= 0.0 {
        0.0
    } else {
        100.0 * (max - min) / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.0]), 3.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_basic() {
        assert_eq!(population_std(&[]), 0.0);
        assert_eq!(population_std(&[5.0]), 0.0);
        assert_eq!(population_std(&[4.0, 4.0, 4.0]), 0.0);
        // Population std of {2, 4} is 1.
        assert!((population_std(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_pct_basic() {
        assert_eq!(range_pct(&[10.0]), 0.0);
        // {9, 11}: range 2, mean 10 → 20%.
        assert!((range_pct(&[9.0, 11.0]) - 20.0).abs() < 1e-12);
        assert_eq!(range_pct(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn even_blocks_have_zero_std_and_range() {
        let xs = [12.5; 6];
        assert_eq!(population_std(&xs), 0.0);
        assert_eq!(range_pct(&xs), 0.0);
    }
}
