//! Per-operator-kind time breakdown — the §3.1 "large-scale evaluation"
//! view of where each model spends its device time.

use crate::stats::mean;
use dnn_graph::Graph;
use gpu_sim::{op_times_us, DeviceConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Time spent in one operator kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindTime {
    /// Operator kind name.
    pub kind: String,
    /// Number of operators of this kind.
    pub count: usize,
    /// Total isolated time, µs.
    pub total_us: f64,
    /// Share of the model's operator time.
    pub share: f64,
}

/// A model's per-kind profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpReport {
    /// Model name.
    pub model: String,
    /// Per-kind rows, largest share first.
    pub kinds: Vec<KindTime>,
    /// Mean operator time, µs.
    pub mean_op_us: f64,
    /// Slowest single operator: (name, µs).
    pub slowest_op: (String, f64),
}

/// Profile `graph` on `dev` and aggregate by operator kind.
pub fn op_report(graph: &Graph, dev: &DeviceConfig) -> OpReport {
    let times = op_times_us(graph, dev);
    let total: f64 = times.iter().sum::<f64>().max(1e-12);

    let mut by_kind: BTreeMap<&'static str, (usize, f64)> = BTreeMap::new();
    let mut slowest = (String::new(), 0.0f64);
    for (op, t) in graph.ops().iter().zip(&times) {
        let e = by_kind.entry(op.kind.name()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += t;
        if *t > slowest.1 {
            slowest = (op.name.clone(), *t);
        }
    }
    let mut kinds: Vec<KindTime> = by_kind
        .into_iter()
        .map(|(kind, (count, total_us))| KindTime {
            kind: kind.to_string(),
            count,
            total_us,
            share: total_us / total,
        })
        .collect();
    kinds.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.kind.cmp(&b.kind)));

    OpReport {
        model: graph.name.clone(),
        kinds,
        mean_op_us: mean(&times),
        slowest_op: slowest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("rep-cnn", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let c1 = b.conv(&x, 32, 3, 1, 1);
        let r1 = b.relu(&c1);
        let c2 = b.conv(&r1, 32, 3, 1, 1);
        let r2 = b.relu(&c2);
        let g = b.gavgpool(&r2);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn shares_sum_to_one() {
        let rep = op_report(&cnn(), &DeviceConfig::default());
        let sum: f64 = rep.kinds.iter().map(|k| k.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        let count: usize = rep.kinds.iter().map(|k| k.count).sum();
        assert_eq!(count, cnn().op_count());
    }

    #[test]
    fn conv_dominates_a_conv_net() {
        let rep = op_report(&cnn(), &DeviceConfig::default());
        assert_eq!(rep.kinds[0].kind, "conv2d");
        assert!(
            rep.kinds[0].share > 0.5,
            "conv share {}",
            rep.kinds[0].share
        );
    }

    #[test]
    fn slowest_op_is_a_conv() {
        let rep = op_report(&cnn(), &DeviceConfig::default());
        assert!(rep.slowest_op.0.starts_with("conv"), "{:?}", rep.slowest_op);
        assert!(rep.slowest_op.1 > rep.mean_op_us);
    }
}
