//! Cut-point sweeps — the machinery behind the paper's Figure 2.
//!
//! Figure 2 plots, for a model split at two cut points `(c1, c2)`, (a) the
//! splitting overhead and (b) the standard deviation of block execution
//! time, as functions of the cut positions. The sweep is embarrassingly
//! parallel, so it fans out with rayon — this is the "large-scale
//! evaluation" of §3.1 compressed from 80 GPU-hours to milliseconds by the
//! simulated substrate.

use crate::block_profile::{profile_split_on, BlockProfile};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One sweep sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Cut positions of this sample.
    pub cuts: Vec<usize>,
    /// Splitting overhead ratio.
    pub overhead_ratio: f64,
    /// Standard deviation of block times, microseconds.
    pub std_us: f64,
}

impl From<BlockProfile> for SweepPoint {
    fn from(p: BlockProfile) -> Self {
        Self {
            cuts: p.cuts.clone(),
            overhead_ratio: p.overhead_ratio,
            std_us: p.std_us,
        }
    }
}

/// Sweep a single cut over every position (with the given stride),
/// producing the 1-D profile of overhead and evenness versus position.
pub fn sweep_one_cut(graph: &Graph, dev: &DeviceConfig, stride: usize) -> Vec<SweepPoint> {
    let m = graph.op_count();
    assert!(stride >= 1);
    let table = CostTable::build(graph, dev);
    (1..m)
        .step_by(stride)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|c| {
            let spec = SplitSpec::new(graph, vec![c]).expect("in-range cut");
            profile_split_on(&table, &spec).into()
        })
        .collect()
}

/// Sweep two cuts `(c1, c2)` with `c1 < c2` over the strided grid — the
/// paper's Figure 2 axes. Returns points in row-major `(c1, c2)` order.
pub fn sweep_two_cuts(graph: &Graph, dev: &DeviceConfig, stride: usize) -> Vec<SweepPoint> {
    let m = graph.op_count();
    assert!(stride >= 1);
    let pairs: Vec<(usize, usize)> = (1..m)
        .step_by(stride)
        .flat_map(|c1| ((c1 + 1)..m).step_by(stride).map(move |c2| (c1, c2)))
        .collect();
    let table = CostTable::build(graph, dev);
    pairs
        .into_par_iter()
        .map(|(c1, c2)| {
            let spec = SplitSpec::new(graph, vec![c1, c2]).expect("in-range cuts");
            profile_split_on(&table, &spec).into()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    /// A CNN whose activation volume shrinks with depth, like the paper's
    /// models.
    fn shrinking_cnn() -> Graph {
        let mut b = GraphBuilder::new("shrink", TensorShape::chw(3, 128, 128));
        let x = b.source();
        let mut t = b.conv(&x, 16, 3, 1, 1);
        for (ch, stride) in [
            (32u64, 2u64),
            (32, 1),
            (64, 2),
            (64, 1),
            (128, 2),
            (128, 1),
            (256, 2),
        ] {
            let c = b.conv(&t, ch, 3, stride, 1);
            t = b.relu(&c);
        }
        let g = b.gavgpool(&t);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn one_cut_sweep_covers_all_positions() {
        let g = shrinking_cnn();
        let pts = sweep_one_cut(&g, &DeviceConfig::default(), 1);
        assert_eq!(pts.len(), g.op_count() - 1);
    }

    #[test]
    fn figure2a_shape_early_cuts_cost_more() {
        // Paper §2.4 observation 1: splitting at earlier operators gives a
        // larger overhead, because early activations are bigger.
        let g = shrinking_cnn();
        let pts = sweep_one_cut(&g, &DeviceConfig::default(), 1);
        let early = pts[1].overhead_ratio; // cut at position 2
        let late = pts[pts.len() - 3].overhead_ratio;
        assert!(
            early > late,
            "early cut overhead {early} should exceed late cut {late}"
        );
    }

    #[test]
    fn figure2b_shape_extreme_cuts_are_uneven() {
        // Paper §2.4 observation 2: cutting at the very beginning or end
        // yields a large std; somewhere in the middle is the minimum.
        let g = shrinking_cnn();
        let pts = sweep_one_cut(&g, &DeviceConfig::default(), 1);
        let stds: Vec<f64> = pts.iter().map(|p| p.std_us).collect();
        let min = stds.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            stds[0] > 2.0 * min,
            "first-cut std {} vs min {min}",
            stds[0]
        );
        assert!(
            stds[stds.len() - 1] > 2.0 * min,
            "last-cut std {} vs min {min}",
            stds.last().unwrap()
        );
        let arg_min = stds.iter().position(|&s| s == min).unwrap();
        assert!(arg_min > 0 && arg_min < stds.len() - 1, "min at {arg_min}");
    }

    #[test]
    fn two_cut_sweep_grid_size() {
        let g = shrinking_cnn();
        let pts = sweep_two_cuts(&g, &DeviceConfig::default(), 1);
        let n = g.op_count() - 1; // candidate positions
        assert_eq!(pts.len(), n * (n - 1) / 2);
        for p in &pts {
            assert!(p.cuts[0] < p.cuts[1]);
        }
    }

    #[test]
    fn stride_reduces_samples() {
        let g = shrinking_cnn();
        let dense = sweep_two_cuts(&g, &DeviceConfig::default(), 1);
        let sparse = sweep_two_cuts(&g, &DeviceConfig::default(), 3);
        assert!(sparse.len() < dense.len() / 3);
    }
}
