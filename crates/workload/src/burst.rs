//! Bursty arrivals: a two-state Markov-modulated Poisson process.
//!
//! The paper evaluates on plain Poisson streams (§5.1); real edge traffic
//! is burstier — a pedestrian entering the scene fires a volley of short
//! requests (the §1 motivation). This generator alternates between a
//! *calm* state and a *burst* state, each with its own mean inter-arrival
//! interval and exponentially-distributed dwell time. With both states
//! identical it degenerates to plain Poisson, which the tests exploit.

use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Parameters of the two-state MMPP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Mean inter-arrival interval while calm, µs.
    pub calm_interval_us: f64,
    /// Mean inter-arrival interval while bursting, µs.
    pub burst_interval_us: f64,
    /// Mean dwell time in the calm state, µs.
    pub calm_dwell_us: f64,
    /// Mean dwell time in the burst state, µs.
    pub burst_dwell_us: f64,
}

impl BurstConfig {
    /// A pedestrian-event flavour: calm 200 ms arrivals, 10× bursts for
    /// ~300 ms every ~2 s.
    pub fn pedestrian() -> Self {
        Self {
            calm_interval_us: 200_000.0,
            burst_interval_us: 20_000.0,
            calm_dwell_us: 2_000_000.0,
            burst_dwell_us: 300_000.0,
        }
    }

    /// The long-run mean inter-arrival interval implied by the config.
    pub fn mean_interval_us(&self) -> f64 {
        let total_dwell = self.calm_dwell_us + self.burst_dwell_us;
        let arrivals = self.calm_dwell_us / self.calm_interval_us
            + self.burst_dwell_us / self.burst_interval_us;
        total_dwell / arrivals
    }
}

/// Two-state MMPP arrival generator.
#[derive(Debug)]
pub struct BurstGen {
    cfg: BurstConfig,
    rng: StdRng,
    now_us: f64,
    in_burst: bool,
    state_ends_us: f64,
}

impl BurstGen {
    /// New generator starting in the calm state.
    pub fn new(cfg: BurstConfig, seed: u64) -> Self {
        assert!(cfg.calm_interval_us > 0.0 && cfg.burst_interval_us > 0.0);
        assert!(cfg.calm_dwell_us > 0.0 && cfg.burst_dwell_us > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let first_dwell = sample_exp(&mut rng, cfg.calm_dwell_us);
        Self {
            cfg,
            rng,
            now_us: 0.0,
            in_burst: false,
            state_ends_us: first_dwell,
        }
    }

    /// Next arrival timestamp (strictly increasing).
    pub fn next_arrival_us(&mut self) -> f64 {
        loop {
            let interval = if self.in_burst {
                self.cfg.burst_interval_us
            } else {
                self.cfg.calm_interval_us
            };
            let gap = sample_exp(&mut self.rng, interval);
            let candidate = self.now_us + gap;
            if candidate <= self.state_ends_us {
                self.now_us = candidate;
                return candidate;
            }
            // State flips before the candidate arrival: discard it
            // (memorylessness makes this exact) and advance the state.
            self.now_us = self.state_ends_us;
            self.in_burst = !self.in_burst;
            let dwell = if self.in_burst {
                self.cfg.burst_dwell_us
            } else {
                self.cfg.calm_dwell_us
            };
            self.state_ends_us = self.now_us + sample_exp(&mut self.rng, dwell);
        }
    }

    /// Generate `n` arrivals.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival_us()).collect()
    }

    /// Whether the generator is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_strictly_increase() {
        let mut g = BurstGen::new(BurstConfig::pedestrian(), 7);
        let ts = g.take(2000);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn degenerate_config_is_poisson_rate() {
        let cfg = BurstConfig {
            calm_interval_us: 10_000.0,
            burst_interval_us: 10_000.0,
            calm_dwell_us: 1_000_000.0,
            burst_dwell_us: 1_000_000.0,
        };
        assert!((cfg.mean_interval_us() - 10_000.0).abs() < 1e-9);
        let mut g = BurstGen::new(cfg, 3);
        let n = 20_000;
        let ts = g.take(n);
        let measured = ts[n - 1] / n as f64;
        assert!((measured - 10_000.0).abs() / 10_000.0 < 0.05, "{measured}");
    }

    #[test]
    fn long_run_rate_matches_formula() {
        let cfg = BurstConfig::pedestrian();
        let mut g = BurstGen::new(cfg.clone(), 11);
        let n = 40_000;
        let ts = g.take(n);
        let measured = ts[n - 1] / n as f64;
        let predicted = cfg.mean_interval_us();
        assert!(
            (measured - predicted).abs() / predicted < 0.08,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn bursts_create_heavier_clustering_than_poisson() {
        // Index of dispersion of counts over windows: ~1 for Poisson,
        // substantially above 1 for the MMPP.
        let dispersion = |ts: &[f64], window: f64| {
            let end = ts.last().copied().unwrap_or(0.0);
            let bins = (end / window).ceil() as usize;
            let mut counts = vec![0.0f64; bins.max(1)];
            for &t in ts {
                let b = ((t / window) as usize).min(counts.len() - 1);
                counts[b] += 1.0;
            }
            let m = counts.iter().sum::<f64>() / counts.len() as f64;
            let v = counts.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / counts.len() as f64;
            v / m
        };
        let cfg = BurstConfig::pedestrian();
        let bursty = BurstGen::new(cfg.clone(), 5).take(20_000);
        let mut poisson = crate::poisson::PoissonGen::new(cfg.mean_interval_us(), 5);
        let smooth = poisson.take(20_000);
        let d_bursty = dispersion(&bursty, 500_000.0);
        let d_smooth = dispersion(&smooth, 500_000.0);
        assert!(
            d_bursty > 2.0 * d_smooth,
            "bursty {d_bursty} vs smooth {d_smooth}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BurstGen::new(BurstConfig::pedestrian(), 9).take(100);
        let b = BurstGen::new(BurstConfig::pedestrian(), 9).take(100);
        assert_eq!(a, b);
    }
}
