#![warn(missing_docs)]
//! # workload — Poisson request generation (paper §5.1)
//!
//! The paper generates request queries from a Poisson process whose mean
//! inter-arrival interval λ defines six scenarios (Table 2: 160 ms "low
//! load" down to 110 ms "high load"), 1000 requests per scenario, each
//! request drawn from the five Table 1 models. This crate reproduces that
//! generator with explicit seeds so every figure is replayable.

pub mod burst;
pub mod drift;
pub mod poisson;
pub mod scenario;
pub mod trace;

pub use burst::{BurstConfig, BurstGen};
pub use drift::{DriftGen, DriftProfile};
pub use poisson::PoissonGen;
pub use scenario::{all_scenarios, Load, Scenario};
pub use trace::{Arrival, RequestTrace};
