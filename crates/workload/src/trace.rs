//! Request traces: the replayable product of a scenario.

use crate::poisson::PoissonGen;
use crate::scenario::Scenario;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// One request arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Dense request id (also the arrival order).
    pub id: u64,
    /// Model name this request targets.
    pub model: String,
    /// Arrival timestamp, µs.
    pub arrival_us: f64,
}

/// A complete scenario trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// The scenario this trace realizes.
    pub scenario: Scenario,
    /// Arrivals in time order.
    pub arrivals: Vec<Arrival>,
}

impl RequestTrace {
    /// Generate a trace for `scenario`: Poisson arrivals, each request
    /// drawn uniformly from `models` (the paper's five-model mix).
    pub fn generate(scenario: Scenario, models: &[&str]) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let mut gen = PoissonGen::new(scenario.lambda_us(), scenario.seed());
        let mut rng = StdRng::seed_from_u64(scenario.seed() ^ 0x9E3779B97F4A7C15);
        let arrivals = (0..scenario.requests)
            .map(|i| Arrival {
                id: i as u64,
                model: models[rng.random_range(0..models.len())].to_string(),
                arrival_us: gen.next_arrival_us(),
            })
            .collect();
        Self { scenario, arrivals }
    }

    /// Generate a bursty trace: arrival times from the two-state MMPP
    /// ([`crate::BurstGen`]) instead of plain Poisson, models drawn
    /// uniformly. The scenario's `lambda_us` is ignored in favour of the
    /// burst config's intervals; its seed still fixes both the arrival
    /// process and the model draws, so traces stay reproducible.
    pub fn generate_burst(scenario: Scenario, models: &[&str], cfg: crate::BurstConfig) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let mut gen = crate::BurstGen::new(cfg, scenario.seed());
        let mut rng = StdRng::seed_from_u64(scenario.seed() ^ 0x9E3779B97F4A7C15);
        let arrivals = (0..scenario.requests)
            .map(|i| Arrival {
                id: i as u64,
                model: models[rng.random_range(0..models.len())].to_string(),
                arrival_us: gen.next_arrival_us(),
            })
            .collect();
        Self { scenario, arrivals }
    }

    /// Generate a non-stationary trace: arrival times from the
    /// inhomogeneous-Poisson [`crate::DriftGen`] (linear ramp or flash
    /// crowd), models drawn uniformly. The scenario's `lambda_us` is
    /// ignored in favour of the profile's intervals; its seed still
    /// fixes both the arrival process and the model draws.
    pub fn generate_drift(
        scenario: Scenario,
        models: &[&str],
        profile: crate::DriftProfile,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        let mut gen = crate::DriftGen::new(profile, scenario.seed());
        let mut rng = StdRng::seed_from_u64(scenario.seed() ^ 0x9E3779B97F4A7C15);
        let arrivals = (0..scenario.requests)
            .map(|i| Arrival {
                id: i as u64,
                model: models[rng.random_range(0..models.len())].to_string(),
                arrival_us: gen.next_arrival_us(),
            })
            .collect();
        Self { scenario, arrivals }
    }

    /// Generate with a custom per-model weight (still Poisson in time).
    pub fn generate_weighted(scenario: Scenario, weighted: &[(&str, f64)]) -> Self {
        assert!(!weighted.is_empty());
        let total: f64 = weighted.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "weights must sum positive");
        let mut gen = PoissonGen::new(scenario.lambda_us(), scenario.seed());
        let mut rng = StdRng::seed_from_u64(scenario.seed() ^ 0x9E3779B97F4A7C15);
        let arrivals = (0..scenario.requests)
            .map(|i| {
                let mut pick: f64 = rng.random_range(0.0..total);
                let mut model = weighted[0].0;
                for (m, w) in weighted {
                    if pick < *w {
                        model = m;
                        break;
                    }
                    pick -= w;
                }
                Arrival {
                    id: i as u64,
                    model: model.to_string(),
                    arrival_us: gen.next_arrival_us(),
                }
            })
            .collect();
        Self { scenario, arrivals }
    }

    /// Duration spanned by the trace, µs.
    pub fn span_us(&self) -> f64 {
        self.arrivals.last().map(|a| a.arrival_us).unwrap_or(0.0)
    }

    /// Count of requests per model name.
    pub fn model_counts(&self) -> std::collections::HashMap<String, usize> {
        let mut m = std::collections::HashMap::new();
        for a in &self.arrivals {
            *m.entry(a.model.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Persist the trace as JSON so an experiment can be replayed outside
    /// this process (or shipped with a bug report).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("traces serialize");
        std::fs::write(path, json)
    }

    /// Load a trace saved with [`RequestTrace::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [&str; 5] = ["yolov2", "googlenet", "resnet50", "vgg19", "gpt2"];

    #[test]
    fn trace_has_requested_count_and_order() {
        let t = RequestTrace::generate(Scenario::table2(3), &MODELS);
        assert_eq!(t.arrivals.len(), 1000);
        for w in t.arrivals.windows(2) {
            assert!(w[1].arrival_us > w[0].arrival_us);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn uniform_mix_is_roughly_even() {
        let t = RequestTrace::generate(Scenario::table2(1), &MODELS);
        let counts = t.model_counts();
        assert_eq!(counts.len(), 5);
        for (m, c) in counts {
            assert!((120..280).contains(&c), "{m}: {c}");
        }
    }

    #[test]
    fn burst_trace_is_reproducible_and_ordered() {
        let cfg = crate::BurstConfig::pedestrian();
        let a = RequestTrace::generate_burst(Scenario::table2(3), &MODELS, cfg.clone());
        let b = RequestTrace::generate_burst(Scenario::table2(3), &MODELS, cfg);
        assert_eq!(a, b);
        assert_eq!(a.arrivals.len(), 1000);
        for w in a.arrivals.windows(2) {
            assert!(w[1].arrival_us > w[0].arrival_us);
        }
        // Models still mix (the draw rng is independent of arrivals).
        assert!(a.model_counts().len() == MODELS.len());
    }

    #[test]
    fn drift_trace_is_reproducible_and_surges() {
        let profile = crate::DriftProfile::FlashCrowd {
            base_interval_us: 10_000.0,
            onset_us: 2_000_000.0,
            surge: 8.0,
            dwell_us: 2_000_000.0,
        };
        let a = RequestTrace::generate_drift(Scenario::table2(3), &MODELS, profile);
        let b = RequestTrace::generate_drift(Scenario::table2(3), &MODELS, profile);
        assert_eq!(a, b);
        assert_eq!(a.arrivals.len(), 1000);
        for w in a.arrivals.windows(2) {
            assert!(w[1].arrival_us > w[0].arrival_us);
        }
        assert_eq!(a.model_counts().len(), MODELS.len());
        // Density visibly jumps at the onset.
        let pre = a
            .arrivals
            .iter()
            .filter(|x| (1_000_000.0..2_000_000.0).contains(&x.arrival_us))
            .count();
        let post = a
            .arrivals
            .iter()
            .filter(|x| (2_000_000.0..3_000_000.0).contains(&x.arrival_us))
            .count();
        assert!(post >= 3 * pre, "no surge: {pre} pre vs {post} post");
    }

    #[test]
    fn weighted_mix_respects_weights() {
        let t = RequestTrace::generate_weighted(
            Scenario::table2(1),
            &[("yolov2", 8.0), ("vgg19", 2.0)],
        );
        let counts = t.model_counts();
        let yolo = counts.get("yolov2").copied().unwrap_or(0);
        assert!(yolo > 700, "yolo {yolo}");
    }

    #[test]
    fn reproducible_per_scenario() {
        let a = RequestTrace::generate(Scenario::table2(2), &MODELS);
        let b = RequestTrace::generate(Scenario::table2(2), &MODELS);
        assert_eq!(a, b);
        let c = RequestTrace::generate(Scenario::table2(4), &MODELS);
        assert_ne!(a.arrivals[0].arrival_us, c.arrivals[0].arrival_us);
    }

    #[test]
    fn file_round_trip_is_exact() {
        let t = RequestTrace::generate(Scenario::table2(4), &MODELS);
        let dir = std::env::temp_dir().join("workload_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save(&path).unwrap();
        let back = RequestTrace::load(&path).unwrap();
        assert_eq!(back, t);
        assert!(RequestTrace::load(&dir.join("nope.json")).is_err());
    }

    #[test]
    fn span_matches_lambda_roughly() {
        let t = RequestTrace::generate(Scenario::table2(1), &MODELS);
        let expect = 160_000.0 * 1000.0;
        assert!((t.span_us() - expect).abs() / expect < 0.1);
    }
}
