//! The six evaluation scenarios of Table 2.

use serde::{Deserialize, Serialize};

/// Load class of a scenario (Table 2's "Load" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Load {
    /// λ ∈ {160, 150} ms.
    Low,
    /// λ ∈ {140, 130, 120, 110} ms.
    High,
}

/// One DLI scenario: a Poisson request stream at a given mean interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// 1-based scenario index as in Table 2.
    pub index: usize,
    /// Mean arrival interval λ, milliseconds.
    pub lambda_ms: f64,
    /// Load class.
    pub load: Load,
    /// Total requests (the paper fixes 1000).
    pub requests: usize,
}

impl Scenario {
    /// Table 2 row by 1-based index.
    pub fn table2(index: usize) -> Self {
        let lambda_ms = match index {
            1 => 160.0,
            2 => 150.0,
            3 => 140.0,
            4 => 130.0,
            5 => 120.0,
            6 => 110.0,
            _ => panic!("Table 2 defines scenarios 1..=6, got {index}"),
        };
        let load = if lambda_ms >= 150.0 {
            Load::Low
        } else {
            Load::High
        };
        Scenario {
            index,
            lambda_ms,
            load,
            requests: 1000,
        }
    }

    /// A cluster-scale scenario outside the Table 2 grid: an arbitrary
    /// Poisson interval for an arbitrary request count. Fleet harnesses
    /// compute `lambda_us` from an offered load relative to the fleet's
    /// aggregate capacity, so it rarely lands on a Table 2 value. Uses
    /// the reserved index 7, giving fleet traces their own seed stream.
    pub fn fleet(lambda_us: f64, requests: usize) -> Self {
        assert!(lambda_us > 0.0, "arrival interval must be positive");
        let lambda_ms = lambda_us / 1e3;
        Scenario {
            index: 7,
            lambda_ms,
            load: if lambda_ms >= 150.0 {
                Load::Low
            } else {
                Load::High
            },
            requests,
        }
    }

    /// Mean arrival interval in microseconds.
    pub fn lambda_us(&self) -> f64 {
        self.lambda_ms * 1e3
    }

    /// A deterministic per-scenario seed for workload generation.
    pub fn seed(&self) -> u64 {
        0xC0FFEE ^ (self.index as u64) << 8
    }
}

/// All six Table 2 scenarios in order.
pub fn all_scenarios() -> Vec<Scenario> {
    (1..=6).map(Scenario::table2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows() {
        let s = all_scenarios();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].lambda_ms, 160.0);
        assert_eq!(s[5].lambda_ms, 110.0);
        assert_eq!(s[0].load, Load::Low);
        assert_eq!(s[1].load, Load::Low);
        assert_eq!(s[2].load, Load::High);
        assert_eq!(s[5].load, Load::High);
        for sc in &s {
            assert_eq!(sc.requests, 1000);
        }
    }

    #[test]
    fn lambdas_strictly_decrease() {
        let s = all_scenarios();
        for w in s.windows(2) {
            assert!(w[1].lambda_ms < w[0].lambda_ms);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            all_scenarios().iter().map(|s| s.seed()).collect();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    #[should_panic(expected = "Table 2")]
    fn out_of_range_scenario() {
        Scenario::table2(7);
    }
}
