//! Non-stationary arrival generation: linear ramps and flash crowds.
//!
//! The six Table-2 scenarios are stationary Poisson; this module is the
//! first brick of the hostile-traffic library (ROADMAP item 5) and the
//! workload split-watch's change-point detectors fire on. Arrivals come
//! from an **inhomogeneous Poisson process** sampled by Lewis–Shedler
//! thinning: candidate gaps are drawn at the profile's peak rate and a
//! candidate at time `t` is accepted with probability
//! `rate(t) / rate_max`. Thinning is exact for any bounded rate
//! function and stays seeded-deterministic — the candidate and
//! acceptance draws come from one `StdRng`, so a `(profile, seed)` pair
//! always yields the same trace.
//!
//! Two profiles:
//!
//! * [`DriftProfile::LinearRamp`] — the mean inter-arrival interval
//!   slides linearly from `start_interval_us` to `end_interval_us`
//!   over `ramp_span_us`, then holds. A slow squeeze: no single
//!   change-point, just a drifting regime.
//! * [`DriftProfile::FlashCrowd`] — stationary at `base_interval_us`
//!   until `onset_us`, then the rate multiplies by `surge` for
//!   `dwell_us`, then reverts. A step change with a known injected
//!   onset, which makes it the calibration workload for detection
//!   latency ("flag within 3 windows of onset").

use rand::prelude::*;

/// Time-varying arrival-rate profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftProfile {
    /// Mean interval slides linearly from `start_interval_us` to
    /// `end_interval_us` over `ramp_span_us`, then holds at the end
    /// value.
    LinearRamp {
        /// Mean inter-arrival interval at t = 0, µs.
        start_interval_us: f64,
        /// Mean inter-arrival interval at and after `ramp_span_us`, µs.
        end_interval_us: f64,
        /// Ramp duration, µs.
        ramp_span_us: f64,
    },
    /// Stationary at `base_interval_us`; at `onset_us` the rate jumps
    /// ×`surge` for `dwell_us`, then reverts.
    FlashCrowd {
        /// Pre-onset mean inter-arrival interval, µs.
        base_interval_us: f64,
        /// Injected change-point, µs.
        onset_us: f64,
        /// Rate multiplier during the crowd (> 1 intensifies).
        surge: f64,
        /// Crowd duration, µs.
        dwell_us: f64,
    },
}

impl DriftProfile {
    /// Instantaneous arrival rate (arrivals per µs) at time `t_us`.
    pub fn rate_per_us(&self, t_us: f64) -> f64 {
        match *self {
            DriftProfile::LinearRamp {
                start_interval_us,
                end_interval_us,
                ramp_span_us,
            } => {
                let f = (t_us / ramp_span_us).clamp(0.0, 1.0);
                let interval = start_interval_us + f * (end_interval_us - start_interval_us);
                1.0 / interval
            }
            DriftProfile::FlashCrowd {
                base_interval_us,
                onset_us,
                surge,
                dwell_us,
            } => {
                let base = 1.0 / base_interval_us;
                if t_us >= onset_us && t_us < onset_us + dwell_us {
                    base * surge
                } else {
                    base
                }
            }
        }
    }

    /// Upper bound on [`DriftProfile::rate_per_us`] (the thinning
    /// envelope).
    pub fn max_rate_per_us(&self) -> f64 {
        match *self {
            DriftProfile::LinearRamp {
                start_interval_us,
                end_interval_us,
                ..
            } => 1.0 / start_interval_us.min(end_interval_us),
            DriftProfile::FlashCrowd {
                base_interval_us,
                surge,
                ..
            } => surge.max(1.0) / base_interval_us,
        }
    }

    /// The injected change-point, if the profile has a sharp one
    /// (`FlashCrowd` onset). Ramps drift instead of stepping.
    pub fn onset_us(&self) -> Option<f64> {
        match *self {
            DriftProfile::FlashCrowd { onset_us, .. } => Some(onset_us),
            DriftProfile::LinearRamp { .. } => None,
        }
    }

    fn validate(&self) {
        match *self {
            DriftProfile::LinearRamp {
                start_interval_us,
                end_interval_us,
                ramp_span_us,
            } => {
                assert!(
                    start_interval_us > 0.0 && end_interval_us > 0.0 && ramp_span_us > 0.0,
                    "ramp parameters must be positive"
                );
            }
            DriftProfile::FlashCrowd {
                base_interval_us,
                onset_us,
                surge,
                dwell_us,
            } => {
                assert!(
                    base_interval_us > 0.0 && surge > 0.0 && dwell_us > 0.0,
                    "flash-crowd parameters must be positive"
                );
                assert!(onset_us >= 0.0, "onset must be non-negative");
            }
        }
    }
}

/// Seeded generator of strictly increasing non-stationary arrivals.
#[derive(Debug)]
pub struct DriftGen {
    rng: StdRng,
    profile: DriftProfile,
    now_us: f64,
}

/// The next representable f64 above `x` (for non-negative finite `x`),
/// mirroring `PoissonGen`'s strict-monotonicity bump.
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

impl DriftGen {
    /// New generator for `profile` with the given seed.
    ///
    /// # Panics
    /// If any profile parameter is non-positive where positivity is
    /// required.
    pub fn new(profile: DriftProfile, seed: u64) -> Self {
        profile.validate();
        DriftGen {
            rng: StdRng::seed_from_u64(seed),
            profile,
            now_us: 0.0,
        }
    }

    /// The profile being sampled.
    pub fn profile(&self) -> &DriftProfile {
        &self.profile
    }

    /// Sample the next arrival timestamp (µs, strictly increasing)
    /// by thinning against the peak-rate envelope.
    pub fn next_arrival_us(&mut self) -> f64 {
        let rate_max = self.profile.max_rate_per_us();
        let mean_gap = 1.0 / rate_max;
        let mut t = self.now_us;
        loop {
            // Candidate gap at the envelope rate; reject the measure-zero
            // u = 0 draw exactly as PoissonGen does, so gaps stay > 0.
            let gap = loop {
                let u: f64 = self.rng.random_range(0.0..1.0);
                let g = -mean_gap * (1.0 - u).ln();
                if g > 0.0 {
                    break g;
                }
            };
            t += gap;
            // Accept with probability rate(t)/rate_max.
            let accept: f64 = self.rng.random_range(0.0..1.0);
            if accept * rate_max < self.profile.rate_per_us(t) {
                self.now_us = if t > self.now_us {
                    t
                } else {
                    next_up(self.now_us)
                };
                return self.now_us;
            }
        }
    }

    /// Generate `n` arrival timestamps.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival_us()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crowd() -> DriftProfile {
        DriftProfile::FlashCrowd {
            base_interval_us: 10_000.0,
            onset_us: 1_000_000.0,
            surge: 8.0,
            dwell_us: 500_000.0,
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_seeded() {
        let a = DriftGen::new(crowd(), 7).take(400);
        let b = DriftGen::new(crowd(), 7).take(400);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
        let c = DriftGen::new(crowd(), 8).take(400);
        assert_ne!(a, c);
    }

    #[test]
    fn flash_crowd_rate_steps_at_onset() {
        let p = crowd();
        assert_eq!(p.rate_per_us(0.0), 1.0 / 10_000.0);
        assert_eq!(p.rate_per_us(1_000_000.0), 8.0 / 10_000.0);
        assert_eq!(p.rate_per_us(1_500_000.0), 1.0 / 10_000.0);
        assert_eq!(p.onset_us(), Some(1_000_000.0));
        // Surge visibly densifies arrivals: count arrivals in the 200 ms
        // before vs after onset.
        let ts = DriftGen::new(p, 3).take(600);
        let before = ts
            .iter()
            .filter(|t| (800_000.0..1_000_000.0).contains(*t))
            .count();
        let after = ts
            .iter()
            .filter(|t| (1_000_000.0..1_200_000.0).contains(*t))
            .count();
        assert!(
            after as f64 >= 3.0 * before as f64,
            "surge not visible: {before} before vs {after} after"
        );
    }

    #[test]
    fn linear_ramp_interval_slides() {
        let p = DriftProfile::LinearRamp {
            start_interval_us: 20_000.0,
            end_interval_us: 5_000.0,
            ramp_span_us: 1_000_000.0,
        };
        assert_eq!(p.rate_per_us(0.0), 1.0 / 20_000.0);
        assert_eq!(p.rate_per_us(500_000.0), 1.0 / 12_500.0);
        // Holds at the end value past the ramp.
        assert_eq!(p.rate_per_us(2_000_000.0), 1.0 / 5_000.0);
        assert_eq!(p.onset_us(), None);
        // Mean gap over the first vs last arrivals shrinks.
        let ts = DriftGen::new(p, 11).take(400);
        let early: f64 = ts[1..50].windows(2).map(|w| w[1] - w[0]).sum::<f64>() / 48.0;
        let late: f64 = ts[350..].windows(2).map(|w| w[1] - w[0]).sum::<f64>() / 48.0;
        assert!(late < early, "ramp did not accelerate: {early} → {late}");
    }

    #[test]
    fn thinned_rate_matches_profile_segments() {
        // Long stationary segments of the flash crowd must converge to
        // their nominal rates (thinning is exact, not approximate).
        let p = DriftProfile::FlashCrowd {
            base_interval_us: 1_000.0,
            onset_us: 5_000_000.0,
            surge: 4.0,
            dwell_us: 5_000_000.0,
        };
        // ~5k arrivals cover the pre segment and ~20k the surge; 27k
        // total guarantees the trace spans past t = 10 s.
        let ts = DriftGen::new(p, 42).take(27_000);
        let pre = ts.iter().filter(|t| **t < 5_000_000.0).count() as f64;
        let during = ts
            .iter()
            .filter(|t| (5_000_000.0..10_000_000.0).contains(*t))
            .count() as f64;
        let pre_rate = pre / 5_000_000.0;
        let during_rate = during / 5_000_000.0;
        assert!(
            (pre_rate - 1.0 / 1_000.0).abs() / (1.0 / 1_000.0) < 0.1,
            "pre rate {pre_rate}"
        );
        assert!(
            (during_rate - 4.0 / 1_000.0).abs() / (4.0 / 1_000.0) < 0.1,
            "during rate {during_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_profile_rejected() {
        DriftGen::new(
            DriftProfile::FlashCrowd {
                base_interval_us: 0.0,
                onset_us: 0.0,
                surge: 1.0,
                dwell_us: 1.0,
            },
            0,
        );
    }
}
