//! Seeded Poisson arrival generation.
//!
//! Inter-arrival gaps of a Poisson process are exponential; we sample them
//! by inverse transform (`−λ·ln(1−u)`) from a seeded `StdRng`, keeping
//! every scenario bit-reproducible.

use rand::prelude::*;

/// Generator of Poisson arrival timestamps.
#[derive(Debug)]
pub struct PoissonGen {
    rng: StdRng,
    mean_interval_us: f64,
    now_us: f64,
}

/// Map a unit draw to an exponential gap, or `None` for the one draw
/// (`u = 0`) whose gap would be zero and must be rejected: the generator
/// guarantees **strictly** increasing arrivals, and `−λ·ln(1−0) = 0`.
fn exp_gap_us(mean_interval_us: f64, u: f64) -> Option<f64> {
    debug_assert!((0.0..1.0).contains(&u));
    // `1 − u ∈ (0, 1]` avoids ln(0), but the u = 0 endpoint (and any u so
    // small that `1 − u` rounds back to 1.0) maps to ln(1) = 0 — reject a
    // zero gap instead of emitting a duplicate timestamp. The generator's
    // draws are 53-bit multiples of 2⁻⁵³, so in practice only u = 0 is
    // ever rejected and committed seeded streams are unchanged.
    let gap = -mean_interval_us * (1.0 - u).ln();
    (gap > 0.0).then_some(gap)
}

/// The next representable f64 above `x` (for non-negative finite `x`).
/// Used to keep arrivals strictly increasing even when a tiny gap would
/// be absorbed by floating-point addition.
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

impl PoissonGen {
    /// Process with the given mean inter-arrival interval (µs) and seed.
    pub fn new(mean_interval_us: f64, seed: u64) -> Self {
        Self::with_start(mean_interval_us, seed, 0.0)
    }

    /// Process resuming from an existing timestamp `start_us` (the first
    /// arrival falls strictly after it).
    pub fn with_start(mean_interval_us: f64, seed: u64, start_us: f64) -> Self {
        assert!(mean_interval_us > 0.0, "interval must be positive");
        assert!(
            start_us.is_finite() && start_us >= 0.0,
            "start must be finite and non-negative"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            mean_interval_us,
            now_us: start_us,
        }
    }

    /// Sample the next arrival timestamp (µs, strictly increasing).
    pub fn next_arrival_us(&mut self) -> f64 {
        // Rejection happens with probability 2⁻⁵³ per draw, so committed
        // seeded streams are unchanged by the guard.
        let gap = loop {
            let u: f64 = self.rng.random_range(0.0..1.0);
            if let Some(gap) = exp_gap_us(self.mean_interval_us, u) {
                break gap;
            }
        };
        let next = self.now_us + gap;
        // A positive gap can still be absorbed by addition when it falls
        // below one ulp of `now`; bump to the next representable value so
        // the documented strict monotonicity holds unconditionally.
        self.now_us = if next > self.now_us {
            next
        } else {
            next_up(self.now_us)
        };
        self.now_us
    }

    /// Generate `n` arrival timestamps.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival_us()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut g = PoissonGen::new(1000.0, 7);
        let ts = g.take(500);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_interval_converges() {
        let mean = 150_000.0;
        let mut g = PoissonGen::new(mean, 42);
        let n = 20_000;
        let ts = g.take(n);
        let measured = ts[n - 1] / n as f64;
        assert!(
            (measured - mean).abs() / mean < 0.03,
            "measured {measured} vs {mean}"
        );
    }

    #[test]
    fn exponential_gaps_have_cv_about_one() {
        // Coefficient of variation of exponential gaps is 1.
        let mut g = PoissonGen::new(1000.0, 3);
        let ts = g.take(20_000);
        let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn seeded_reproducibility() {
        let a = PoissonGen::new(5000.0, 99).take(100);
        let b = PoissonGen::new(5000.0, 99).take(100);
        assert_eq!(a, b);
        let c = PoissonGen::new(5000.0, 100).take(100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        PoissonGen::new(0.0, 1);
    }

    #[test]
    fn zero_unit_draw_is_rejected_not_zero_gap() {
        // Regression for the zero-gap bug: u = 0 used to yield gap 0 and a
        // duplicate timestamp; now the draw is rejected outright.
        assert_eq!(exp_gap_us(1000.0, 0.0), None);
        // A u so small that `1 − u` rounds back to 1.0 is rejected too —
        // its gap would also be zero (such draws cannot occur from the
        // 53-bit generator, but the guard must be total).
        assert_eq!(exp_gap_us(1000.0, f64::from_bits(1)), None);
        // Every admissible draw yields a strictly positive gap, down to
        // the generator's smallest nonzero draw, 2⁻⁵³.
        let min_draw = (2f64).powi(-53);
        assert!(exp_gap_us(1000.0, min_draw).unwrap() > 0.0);
        for u in [1e-16, 0.25, 0.5, 0.999_999] {
            assert!(exp_gap_us(1000.0, u).unwrap() > 0.0, "u = {u}");
        }
    }

    #[test]
    fn zero_guard_leaves_seeded_streams_unchanged() {
        // The fix must not perturb committed workloads: the guarded
        // generator reproduces the unguarded inverse-transform stream
        // draw for draw (no committed seed ever draws u = 0).
        for seed in [0u64, 7, 42, 99, 0x5917] {
            let got = PoissonGen::new(2500.0, seed).take(200);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut now = 0.0f64;
            let want: Vec<f64> = (0..200)
                .map(|_| {
                    let u: f64 = rng.random_range(0.0..1.0);
                    now += -2500.0 * (1.0 - u).ln();
                    now
                })
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn strictness_survives_ulp_absorption() {
        // At a huge starting timestamp a µs-scale gap is far below one ulp
        // (ulp(1e18) ≈ 128), so naive addition would stall the clock; the
        // next-up bump must keep arrivals strictly increasing anyway.
        let mut g = PoissonGen::with_start(1e-3, 5, 1e18);
        let ts = g.take(64);
        assert!(ts[0] > 1e18);
        for w in ts.windows(2) {
            assert!(w[1] > w[0], "absorbed gap produced a duplicate timestamp");
        }
    }

    #[test]
    fn with_start_offsets_the_stream() {
        let base = PoissonGen::new(1000.0, 11).take(50);
        let offset = PoissonGen::with_start(1000.0, 11, 5_000.0).take(50);
        for (a, b) in base.iter().zip(&offset) {
            assert!((b - a - 5_000.0).abs() < 1e-6);
        }
    }
}
