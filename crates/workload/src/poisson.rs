//! Seeded Poisson arrival generation.
//!
//! Inter-arrival gaps of a Poisson process are exponential; we sample them
//! by inverse transform (`−λ·ln(u)`) from a seeded `StdRng`, keeping every
//! scenario bit-reproducible.

use rand::prelude::*;

/// Generator of Poisson arrival timestamps.
#[derive(Debug)]
pub struct PoissonGen {
    rng: StdRng,
    mean_interval_us: f64,
    now_us: f64,
}

impl PoissonGen {
    /// Process with the given mean inter-arrival interval (µs) and seed.
    pub fn new(mean_interval_us: f64, seed: u64) -> Self {
        assert!(mean_interval_us > 0.0, "interval must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            mean_interval_us,
            now_us: 0.0,
        }
    }

    /// Sample the next arrival timestamp (µs, strictly increasing).
    pub fn next_arrival_us(&mut self) -> f64 {
        // Inverse-transform sampling; `1 − u ∈ (0, 1]` avoids ln(0).
        let u: f64 = self.rng.random_range(0.0..1.0);
        let gap = -self.mean_interval_us * (1.0 - u).ln();
        self.now_us += gap;
        self.now_us
    }

    /// Generate `n` arrival timestamps.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival_us()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut g = PoissonGen::new(1000.0, 7);
        let ts = g.take(500);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_interval_converges() {
        let mean = 150_000.0;
        let mut g = PoissonGen::new(mean, 42);
        let n = 20_000;
        let ts = g.take(n);
        let measured = ts[n - 1] / n as f64;
        assert!(
            (measured - mean).abs() / mean < 0.03,
            "measured {measured} vs {mean}"
        );
    }

    #[test]
    fn exponential_gaps_have_cv_about_one() {
        // Coefficient of variation of exponential gaps is 1.
        let mut g = PoissonGen::new(1000.0, 3);
        let ts = g.take(20_000);
        let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn seeded_reproducibility() {
        let a = PoissonGen::new(5000.0, 99).take(100);
        let b = PoissonGen::new(5000.0, 99).take(100);
        assert_eq!(a, b);
        let c = PoissonGen::new(5000.0, 100).take(100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        PoissonGen::new(0.0, 1);
    }
}
