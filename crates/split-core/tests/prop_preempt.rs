//! Property tests for the greedy preemption algorithm: the §3.4
//! guarantees must hold for arbitrary queues.

use proptest::prelude::*;
use split_core::{algorithm1_preempt, greedy_preempt, response_ratio, QueueEntry};

const ALPHA: f64 = 4.0;

fn entry_strategy() -> impl Strategy<Value = QueueEntry> {
    (0u32..8, 1_000.0f64..80_000.0, 0.0f64..50_000.0).prop_map(|(task, exec, arrival)| QueueEntry {
        id: 0,
        task,
        exec_us: exec,
        left_us: exec * 1.1, // some splitting overhead
        arrival_us: arrival,
    })
}

fn queue_strategy() -> impl Strategy<Value = Vec<QueueEntry>> {
    proptest::collection::vec(entry_strategy(), 0..24).prop_map(|mut q| {
        for (i, e) in q.iter_mut().enumerate() {
            e.id = i as u64;
        }
        q
    })
}

/// Sum of the two neighbors' response ratios at position `i`.
fn pair_sum(q: &[QueueEntry], i: usize, base: f64, now: f64) -> f64 {
    let front_wait: f64 = base + q[..i].iter().map(|e| e.left_us).sum::<f64>();
    response_ratio(&q[i], front_wait, now, ALPHA)
        + response_ratio(&q[i + 1], front_wait + q[i].left_us, now, ALPHA)
}

proptest! {
    /// Insertion keeps everyone present and in a valid position.
    #[test]
    fn preempt_preserves_queue(mut q in queue_strategy(), new in entry_strategy(), base in 0.0f64..30_000.0) {
        let n = q.len();
        let mut new = new;
        new.id = 999;
        let now = 60_000.0;
        let d = greedy_preempt(&mut q, new, base, now, ALPHA);
        prop_assert_eq!(q.len(), n + 1);
        prop_assert!(d.position <= n);
        prop_assert_eq!(q[d.position].id, 999);
        // Every original entry still present, in the same relative order.
        let rest: Vec<u64> = q.iter().filter(|e| e.id != 999).map(|e| e.id).collect();
        prop_assert_eq!(rest, (0..n as u64).collect::<Vec<_>>());
    }

    /// FIFO per task: the new request never sits in front of an
    /// earlier-arrived request of the same task.
    #[test]
    fn preempt_respects_same_task_fifo(mut q in queue_strategy(), new in entry_strategy(), base in 0.0f64..30_000.0) {
        let mut new = new;
        new.id = 999;
        let task = new.task;
        let now = 60_000.0;
        greedy_preempt(&mut q, new, base, now, ALPHA);
        let my_pos = q.iter().position(|e| e.id == 999).unwrap();
        for e in &q[my_pos + 1..] {
            prop_assert!(e.task != task,
                "jumped ahead of same-task request {}", e.id);
        }
    }

    /// Local optimality: after insertion, swapping the new request with
    /// either neighbor cannot lower that pair's summed response ratio
    /// (unless the forward neighbor is same-task, where FIFO overrides).
    #[test]
    fn preempt_is_locally_optimal(mut q in queue_strategy(), new in entry_strategy(), base in 0.0f64..30_000.0) {
        let mut new = new;
        new.id = 999;
        let now = 60_000.0;
        let d = greedy_preempt(&mut q, new, base, now, ALPHA);
        let i = d.position;
        // Backward swap (new moves one later).
        if i + 1 < q.len() {
            let before = pair_sum(&q, i, base, now);
            let mut alt = q.clone();
            alt.swap(i, i + 1);
            let after = pair_sum(&alt, i, base, now);
            prop_assert!(after + 1e-9 >= before,
                "moving the new request back would improve the pair");
        }
        // Forward swap (new moves one earlier), unless FIFO stopped it.
        if i > 0 && q[i - 1].task != q[i].task {
            let before = pair_sum(&q, i - 1, base, now);
            let mut alt = q.clone();
            alt.swap(i - 1, i);
            let after = pair_sum(&alt, i - 1, base, now);
            prop_assert!(after + 1e-9 >= before,
                "the bubble stopped too early");
        }
    }

    /// Comparisons are bounded by the queue length (O(n) worst case).
    #[test]
    fn preempt_comparisons_linear(mut q in queue_strategy(), new in entry_strategy()) {
        let n = q.len();
        let mut new = new;
        new.id = 999;
        let d = greedy_preempt(&mut q, new, 0.0, 60_000.0, ALPHA);
        prop_assert!(d.comparisons <= n);
    }

    /// For two-entry queues the greedy order matches the brute-force
    /// best order by total response ratio (FIFO permitting).
    #[test]
    fn preempt_matches_bruteforce_on_pairs(a in entry_strategy(), b in entry_strategy()) {
        let now = 60_000.0;
        let mut a = a; a.id = 1;
        let mut b = b; b.id = 2;
        prop_assume!(a.task != b.task);
        let mut q = vec![a.clone()];
        greedy_preempt(&mut q, b.clone(), 0.0, now, ALPHA);

        let total = |first: &QueueEntry, second: &QueueEntry| {
            response_ratio(first, 0.0, now, ALPHA)
                + response_ratio(second, first.left_us, now, ALPHA)
        };
        let greedy_total = total(&q[0], &q[1]);
        let best = total(&a, &b).min(total(&b, &a));
        prop_assert!((greedy_total - best).abs() < 1e-9,
            "greedy {greedy_total} vs best {best}");
    }
}

proptest! {
    /// The bubble-pass implementation and the paper's transliterated
    /// Algorithm 1 choose the same insertion position (and hence produce
    /// identical queues) for arbitrary inputs.
    #[test]
    fn algorithm1_equals_bubble_pass(
        q in queue_strategy(),
        new in entry_strategy(),
        base in 0.0f64..30_000.0,
    ) {
        let now = 60_000.0;
        let mut new = new;
        new.id = 999;
        let mut q1 = q.clone();
        let mut q2 = q;
        let d1 = greedy_preempt(&mut q1, new.clone(), base, now, ALPHA);
        let d2 = algorithm1_preempt(&mut q2, new, base, now, ALPHA);
        prop_assert_eq!(d1.position, d2.position);
        prop_assert_eq!(d1.stop, d2.stop);
        prop_assert_eq!(q1, q2);
    }
}
