//! Property tests for the genetic algorithm and the Eq. 1 analysis.

use dnn_graph::{Graph, GraphBuilder, SplitSpec, TensorShape};
use gpu_sim::DeviceConfig;
use proptest::prelude::*;
use split_core::analysis::monte_carlo_waiting_us;
use split_core::{evolve, expected_waiting_us, expected_waiting_via_moments, GaConfig};

fn cnn(depth: usize, width: u64) -> Graph {
    let mut b = GraphBuilder::new("prop-cnn", TensorShape::chw(3, 64, 64));
    let x = b.source();
    let mut t = b.conv(&x, width, 3, 1, 1);
    for i in 0..depth {
        let stride = if i % 4 == 3 { 2 } else { 1 };
        let c = b.conv(&t, width + 8 * (i as u64 / 4), 3, stride, 1);
        t = b.relu(&c);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The GA always returns a valid split with the requested block count
    /// and a finite fitness, for any model shape and seed.
    #[test]
    fn ga_output_always_valid(depth in 4usize..14, width in 8u64..32, blocks in 2usize..5, seed in 0u64..1_000) {
        let g = cnn(depth, width);
        prop_assume!(g.op_count() > blocks + 1);
        let dev = DeviceConfig::default();
        let mut cfg = GaConfig::new(blocks).with_seed(seed);
        cfg.generations = 8;
        cfg.population = 12;
        let out = evolve(&g, &dev, &cfg);
        prop_assert_eq!(out.best.block_count(), blocks);
        SplitSpec::new(&g, out.best.cuts().to_vec()).unwrap();
        prop_assert!(out.best_profile.std_us.is_finite());
        prop_assert!(out.best_profile.overhead_ratio > 0.0);
        // History fitness is monotone non-decreasing.
        for w in out.history.windows(2) {
            prop_assert!(w[1].best_fitness + 1e-12 >= w[0].best_fitness);
        }
    }
}

proptest! {
    /// Eq. 1: both closed forms agree with each other and with the
    /// Monte-Carlo mechanism for arbitrary block vectors.
    #[test]
    fn eq1_forms_agree(blocks in proptest::collection::vec(10.0f64..10_000.0, 1..12)) {
        let a = expected_waiting_us(&blocks);
        let b = expected_waiting_via_moments(&blocks);
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
        let mc = monte_carlo_waiting_us(&blocks, 60_000, 11);
        prop_assert!((mc - a).abs() < 0.05 * a, "exact {a} vs MC {mc}");
    }

    /// Eq. 1 is minimized, over fixed total and count, by the even split.
    #[test]
    fn eq1_even_is_optimal(total in 1_000.0f64..100_000.0, n in 2usize..8, skew in 0.01f64..0.99) {
        let even = vec![total / n as f64; n];
        // Skewed: one block takes `skew` of the total, the rest share.
        let mut skewed = vec![total * (1.0 - skew) / (n - 1) as f64; n - 1];
        skewed.push(total * skew);
        prop_assume!((skew - 1.0 / n as f64).abs() > 0.01);
        prop_assert!(expected_waiting_us(&even) < expected_waiting_us(&skewed));
    }

    /// Adding a cut to an even split never increases expected waiting
    /// (ignoring overhead — that's what Eq. 2's second term is for).
    #[test]
    fn eq1_more_even_blocks_wait_less(total in 1_000.0f64..100_000.0, n in 1usize..10) {
        let coarse = vec![total / n as f64; n];
        let fine = vec![total / (n + 1) as f64; n + 1];
        prop_assert!(expected_waiting_us(&fine) < expected_waiting_us(&coarse));
    }
}
