//! Exhaustive split search — the baseline that motivates the GA.
//!
//! §2.2: dividing a model with `M` operators into `N` blocks admits
//! `C(M−1, N−1)` candidates; profiling them all on device would take tens
//! of hours. The functions here enumerate that space (guarded by an
//! explicit candidate limit) so benches can quantify the GA's advantage
//! and small-model tests can verify the GA finds true optima.

use crate::fitness::fitness;
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use profiler::{profile_split_on, BlockProfile};
use rayon::prelude::*;

/// Number of split candidates for `op_count` operators into `blocks`
/// blocks: `C(op_count−1, blocks−1)`. Saturates at `u128::MAX`.
pub fn count_candidates(op_count: usize, blocks: usize) -> u128 {
    if blocks == 0 || blocks > op_count {
        return 0;
    }
    let n = (op_count - 1) as u128;
    let k = (blocks - 1) as u128;
    let k = k.min(n - k.min(n));
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return u128::MAX,
        };
    }
    acc
}

/// Exhaustively profile every `blocks`-way split and return the fittest
/// candidate (Eq. 2). Returns `None` when the space exceeds
/// `max_candidates` — the caller is expected to fall back to the GA, as
/// the paper does.
pub fn exhaustive_best(
    graph: &Graph,
    dev: &DeviceConfig,
    blocks: usize,
    max_candidates: u128,
) -> Option<(SplitSpec, BlockProfile)> {
    let total = count_candidates(graph.op_count(), blocks);
    if total == 0 || total > max_candidates {
        return None;
    }
    let combos = combinations(graph.op_count() - 1, blocks - 1);
    let table = CostTable::build(graph, dev);
    combos
        .into_par_iter()
        .map(|cuts| {
            let cuts: Vec<usize> = cuts.into_iter().map(|c| c + 1).collect();
            let spec = SplitSpec::new(graph, cuts).expect("enumerated cuts valid");
            let p = profile_split_on(&table, &spec);
            let f = fitness(&p);
            (spec, p, f)
        })
        .max_by(|a, b| a.2.total_cmp(&b.2).then_with(|| b.0.cuts().cmp(a.0.cuts())))
        .map(|(s, p, _)| (s, p))
}

/// All k-combinations of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![vec![]];
    }
    if k > n {
        return vec![];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};
    use profiler::profile_split;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("chain", TensorShape::chw(4, 32, 32));
        let x = b.source();
        let mut t = b.conv(&x, 8, 3, 1, 1);
        for _ in 0..n - 1 {
            t = b.conv(&t, 8, 3, 1, 1);
        }
        b.finish()
    }

    #[test]
    fn candidate_counts() {
        // C(9, 1) = 9; C(9, 2) = 36.
        assert_eq!(count_candidates(10, 2), 9);
        assert_eq!(count_candidates(10, 3), 36);
        // Paper §2.2 headline shape: counts explode combinatorially.
        assert!(count_candidates(122, 3) > 7_000);
        assert_eq!(count_candidates(10, 1), 1);
        assert_eq!(count_candidates(10, 11), 0);
        assert_eq!(count_candidates(0, 2), 0);
    }

    #[test]
    fn combinations_enumerate_exactly() {
        let c = combinations(5, 2);
        assert_eq!(c.len(), 10);
        assert_eq!(c[0], vec![0, 1]);
        assert_eq!(c[9], vec![3, 4]);
        // All distinct and sorted.
        for combo in &c {
            assert!(combo[0] < combo[1]);
        }
    }

    #[test]
    fn exhaustive_finds_global_best() {
        let g = chain(10);
        let dev = DeviceConfig::default();
        let (best, bp) = exhaustive_best(&g, &dev, 2, 1_000_000).unwrap();
        // Check optimality against manual scan.
        for c in 1..g.op_count() {
            let p = profile_split(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
            assert!(fitness(&p) <= fitness(&bp) + 1e-12, "cut {c} beats 'best'");
        }
        assert_eq!(best.block_count(), 2);
    }

    #[test]
    fn refuses_oversized_spaces() {
        let g = chain(30);
        let dev = DeviceConfig::default();
        assert!(exhaustive_best(&g, &dev, 4, 100).is_none());
    }
}
