//! Evenly-sized model splitting with an observation-guided genetic
//! algorithm (paper §3.2–§3.3).
//!
//! The chromosome is a set of `m−1` distinct cut positions. The two §2.4
//! observations shape the search:
//!
//! 1. *early cuts are expensive* → initialization and mutation are biased
//!    away from the front of the model ([`InitStrategy::Guided`]), and
//! 2. *even cuts sit near (slightly before) the middle* → the triangular
//!    sampling distribution peaks just before the midpoint.
//!
//! Each generation: profile every candidate (rayon-parallel, memoized in a
//! [`ProfileCache`]), select parents by tournament on Eq. 2 fitness, apply
//! the configured crossover with probability `crossover_prob` (otherwise
//! copy the parents), mutate cut positions with probability `mutation_prob`, and
//! carry the elite fraction over unchanged. The loop stops at
//! `generations` or when the best candidate has not improved for
//! `patience` generations — exactly the steps enumerated in §3.3.

use crate::fitness::fitness;
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use profiler::{BlockProfile, ProfileCache};
use rand::prelude::*;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How the initial population (and mutation re-sampling) picks positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// Observation-guided (§3.2): triangular distribution over op index,
    /// peaked slightly before the middle, truncated away from the front.
    Guided,
    /// Uniform over all positions — the ablation baseline.
    Uniform,
}

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of blocks to split into (`m`); the chromosome has `m−1` cuts.
    pub blocks: usize,
    /// Population size per generation.
    pub population: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Probability a selected pair produces crossover offspring (otherwise
    /// the parents are copied).
    pub crossover_prob: f64,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// Fraction of the population carried over unchanged (elitism).
    pub elite_frac: f64,
    /// Stop early when the best fitness is unchanged this many generations.
    pub patience: usize,
    /// RNG seed (the algorithm is fully deterministic given the seed).
    pub seed: u64,
    /// Position-sampling strategy.
    pub init: InitStrategy,
    /// Crossover operator.
    pub crossover: CrossoverOp,
}

/// How two parent chromosomes recombine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverOp {
    /// Each gene independently from either parent (default).
    Uniform,
    /// One split point in gene index space; children swap tails. With few
    /// genes this preserves co-adapted cut pairs better but mixes less.
    SinglePoint,
}

impl GaConfig {
    /// The paper-flavoured defaults for splitting into `blocks` blocks.
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            population: 32,
            generations: 30,
            crossover_prob: 0.8,
            mutation_prob: 0.2,
            elite_frac: 0.125,
            patience: 8,
            seed: 0x5917,
            init: InitStrategy::Guided,
            crossover: CrossoverOp::Uniform,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style init-strategy override (for the ablation bench).
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Builder-style crossover-operator override.
    pub fn with_crossover(mut self, op: CrossoverOp) -> Self {
        self.crossover = op;
        self
    }
}

/// Per-generation statistics — the series plotted in the paper's Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best Eq. 2 fitness in the population.
    pub best_fitness: f64,
    /// σ of the best candidate's block times, µs (Figure 5a).
    pub best_std_us: f64,
    /// Splitting-overhead ratio of the best candidate (Figure 5b).
    pub best_overhead: f64,
    /// Distinct candidates profiled so far (cache size).
    pub candidates_profiled: usize,
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// The fittest split found.
    pub best: SplitSpec,
    /// Its profile.
    pub best_profile: BlockProfile,
    /// Per-generation best-candidate statistics (Figure 5 series).
    pub history: Vec<GenStats>,
    /// Generations actually run (≤ `cfg.generations`; early stop counts).
    pub generations_run: usize,
}

/// Run the genetic algorithm on `graph` over device `dev`.
///
/// ```
/// use split_core::{evolve, GaConfig};
/// use gpu_sim::DeviceConfig;
/// use dnn_graph::{GraphBuilder, TensorShape};
///
/// // A small CNN to split into two blocks.
/// let mut b = GraphBuilder::new("demo", TensorShape::chw(3, 32, 32));
/// let x = b.source();
/// let mut t = b.conv(&x, 16, 3, 1, 1);
/// for _ in 0..6 {
///     let c = b.conv(&t, 16, 3, 1, 1);
///     t = b.relu(&c);
/// }
/// let graph = b.finish();
///
/// let out = evolve(&graph, &DeviceConfig::jetson_nano(), &GaConfig::new(2));
/// assert_eq!(out.best.block_count(), 2);
/// assert!(out.best_profile.overhead_ratio > 0.0);
/// ```
///
/// # Panics
/// Panics if `cfg.blocks < 2` or the model has fewer operators than blocks.
pub fn evolve(graph: &Graph, dev: &DeviceConfig, cfg: &GaConfig) -> GaOutcome {
    evolve_on(graph, &CostTable::build(graph, dev), cfg)
}

/// [`evolve`] against a prebuilt [`CostTable`].
///
/// The table is built once per run and shared by every generation and
/// worker thread, so each candidate profile is `O(cuts)` instead of
/// `O(ops)`. Bit-identical to [`evolve`] on the table's (graph, device)
/// pair — the table reproduces the direct path's float operations in the
/// same order, and the RNG never observes profiling at all. Callers
/// planning several block counts over one pair (e.g.
/// `SplitPlan::offline`) build the table themselves and amortize it
/// across runs.
///
/// # Panics
/// Panics if `cfg.blocks < 2` or the model has fewer operators than blocks.
pub fn evolve_on(graph: &Graph, table: &CostTable, cfg: &GaConfig) -> GaOutcome {
    assert!(
        cfg.blocks >= 2,
        "splitting into {} blocks is a no-op",
        cfg.blocks
    );
    assert!(
        graph.op_count() > cfg.blocks,
        "cannot split {} ops into {} blocks",
        graph.op_count(),
        cfg.blocks
    );
    assert!(cfg.population >= 4, "population too small");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cache = ProfileCache::new();
    let cuts_per = cfg.blocks - 1;

    let mut population: Vec<SplitSpec> = (0..cfg.population)
        .map(|_| random_spec(graph, cuts_per, cfg.init, &mut rng))
        .collect();

    let mut history = Vec::with_capacity(cfg.generations);
    let mut best: Option<(SplitSpec, BlockProfile, f64)> = None;
    let mut stale = 0usize;
    let mut generations_run = 0usize;

    for generation in 0..cfg.generations {
        generations_run = generation + 1;
        // Profile the whole population in parallel (memoized).
        let scored: Vec<(SplitSpec, BlockProfile, f64)> = population
            .par_iter()
            .map(|spec| {
                let p = cache.profile_on(table, spec);
                let f = fitness(&p);
                (spec.clone(), p, f)
            })
            .collect();
        // `collect` is the generation barrier: every candidate above is
        // measured before the cache size is read, so this statistic is
        // identical at any SPLIT_THREADS worker count.
        let candidates_profiled = cache.len();

        // Track the global best; the tie-break on cuts keeps runs stable.
        let gen_best = scored
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2).then_with(|| b.0.cuts().cmp(a.0.cuts())))
            .expect("non-empty population");
        let improved = match &best {
            None => true,
            Some((_, _, f)) => gen_best.2 > *f + 1e-15,
        };
        if improved {
            best = Some(gen_best.clone());
            stale = 0;
        } else {
            stale += 1;
        }

        let (_, bp, bf) = best.as_ref().unwrap();
        history.push(GenStats {
            generation,
            best_fitness: *bf,
            best_std_us: bp.std_us,
            best_overhead: bp.overhead_ratio,
            candidates_profiled,
        });

        if stale >= cfg.patience {
            break;
        }

        // --- Produce the next generation.
        let elite_n = ((cfg.population as f64 * cfg.elite_frac).round() as usize).max(1);
        let mut ranked: Vec<&(SplitSpec, BlockProfile, f64)> = scored.iter().collect();
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
        let mut next: Vec<SplitSpec> = ranked.iter().take(elite_n).map(|t| t.0.clone()).collect();

        while next.len() < cfg.population {
            let pa = tournament(&scored, &mut rng);
            let pb = tournament(&scored, &mut rng);
            let (mut c1, mut c2) = if rng.random_bool(cfg.crossover_prob) {
                crossover(graph, cfg.crossover, pa, pb, cuts_per, cfg.init, &mut rng)
            } else {
                (pa.clone(), pb.clone())
            };
            if rng.random_bool(cfg.mutation_prob) {
                c1 = mutate(graph, &c1, cuts_per, cfg.init, &mut rng);
            }
            if rng.random_bool(cfg.mutation_prob) {
                c2 = mutate(graph, &c2, cuts_per, cfg.init, &mut rng);
            }
            next.push(c1);
            if next.len() < cfg.population {
                next.push(c2);
            }
        }
        population = next;
    }

    // The in-flight dedup invariant: every distinct candidate was measured
    // exactly once, no matter how the pool raced into the cache.
    debug_assert_eq!(cache.stats().1 as usize, cache.len());

    let (best, best_profile, _) = best.expect("at least one generation ran");
    GaOutcome {
        best,
        best_profile,
        history,
        generations_run,
    }
}

/// Tournament selection (size 3) by fitness.
fn tournament<'a>(scored: &'a [(SplitSpec, BlockProfile, f64)], rng: &mut StdRng) -> &'a SplitSpec {
    let mut best: Option<&(SplitSpec, BlockProfile, f64)> = None;
    for _ in 0..3 {
        let c = &scored[rng.random_range(0..scored.len())];
        if best.map(|b| c.2 > b.2).unwrap_or(true) {
            best = Some(c);
        }
    }
    &best.unwrap().0
}

/// Sample one cut position under the strategy.
fn sample_position(m: usize, init: InitStrategy, rng: &mut StdRng) -> usize {
    match init {
        InitStrategy::Uniform => rng.random_range(1..m),
        InitStrategy::Guided => {
            // Triangular distribution over [0.1·m, 0.95·m] peaked at 0.45·m
            // — "closer to the middle but slightly towards the beginning"
            // (§2.4), truncated away from the expensive early operators.
            let lo = 0.10 * m as f64;
            let peak = 0.45 * m as f64;
            let hi = 0.95 * m as f64;
            let u: f64 = rng.random_range(0.0..1.0);
            let fc = (peak - lo) / (hi - lo);
            let x = if u < fc {
                lo + (u * (hi - lo) * (peak - lo)).sqrt()
            } else {
                hi - ((1.0 - u) * (hi - lo) * (hi - peak)).sqrt()
            };
            (x.round() as usize).clamp(1, m - 1)
        }
    }
}

/// Random chromosome with exactly `cuts_per` distinct cuts.
fn random_spec(graph: &Graph, cuts_per: usize, init: InitStrategy, rng: &mut StdRng) -> SplitSpec {
    let m = graph.op_count();
    let mut cuts = Vec::with_capacity(cuts_per);
    let mut guard = 0;
    while cuts.len() < cuts_per {
        let c = sample_position(m, init, rng);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
        guard += 1;
        if guard > 64 * cuts_per {
            // Dense fallback for tiny models: take any unused position.
            for c in 1..m {
                if cuts.len() < cuts_per && !cuts.contains(&c) {
                    cuts.push(c);
                }
            }
        }
    }
    cuts.sort_unstable();
    SplitSpec::new(graph, cuts).expect("sampled cuts are valid")
}

/// Repair a raw cut multiset to exactly `cuts_per` distinct in-range cuts,
/// topping up with strategy-sampled positions.
fn repair(
    graph: &Graph,
    raw: Vec<usize>,
    cuts_per: usize,
    init: InitStrategy,
    rng: &mut StdRng,
) -> SplitSpec {
    let m = graph.op_count();
    let mut cuts: Vec<usize> = raw.into_iter().map(|c| c.clamp(1, m - 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut guard = 0;
    while cuts.len() < cuts_per {
        let c = sample_position(m, init, rng);
        if !cuts.contains(&c) {
            cuts.push(c);
            cuts.sort_unstable();
        }
        guard += 1;
        if guard > 64 * cuts_per {
            for c in 1..m {
                if cuts.len() < cuts_per && !cuts.contains(&c) {
                    cuts.push(c);
                }
            }
            cuts.sort_unstable();
        }
    }
    cuts.truncate(cuts_per);
    SplitSpec::new(graph, cuts).expect("repaired cuts are valid")
}

/// Recombine two parents under the configured operator, then repair each
/// child to the exact cut count.
fn crossover(
    graph: &Graph,
    op: CrossoverOp,
    a: &SplitSpec,
    b: &SplitSpec,
    cuts_per: usize,
    init: InitStrategy,
    rng: &mut StdRng,
) -> (SplitSpec, SplitSpec) {
    let mut g1 = Vec::with_capacity(cuts_per);
    let mut g2 = Vec::with_capacity(cuts_per);
    match op {
        CrossoverOp::Uniform => {
            for i in 0..cuts_per {
                let (x, y) = (a.cuts()[i], b.cuts()[i]);
                if rng.random_bool(0.5) {
                    g1.push(x);
                    g2.push(y);
                } else {
                    g1.push(y);
                    g2.push(x);
                }
            }
        }
        CrossoverOp::SinglePoint => {
            let point = if cuts_per <= 1 {
                cuts_per
            } else {
                rng.random_range(1..cuts_per)
            };
            for i in 0..cuts_per {
                let (x, y) = (a.cuts()[i], b.cuts()[i]);
                if i < point {
                    g1.push(x);
                    g2.push(y);
                } else {
                    g1.push(y);
                    g2.push(x);
                }
            }
        }
    }
    (
        repair(graph, g1, cuts_per, init, rng),
        repair(graph, g2, cuts_per, init, rng),
    )
}

/// Mutation: shift one cut by a small signed step; guided mode nudges cuts
/// that drifted into the expensive front region back toward the middle.
fn mutate(
    graph: &Graph,
    spec: &SplitSpec,
    cuts_per: usize,
    init: InitStrategy,
    rng: &mut StdRng,
) -> SplitSpec {
    let m = graph.op_count();
    let mut cuts = spec.cuts().to_vec();
    let i = rng.random_range(0..cuts.len());
    let span = (m / 8).max(1) as i64;
    let mut step = rng.random_range(-span..=span);
    if init == InitStrategy::Guided && cuts[i] < m / 10 {
        // Observation 1: early cuts carry large transfers; push backward.
        step = step.abs().max(1);
    }
    let moved = (cuts[i] as i64 + step).clamp(1, (m - 1) as i64) as usize;
    cuts[i] = moved;
    repair(graph, cuts, cuts_per, init, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn(depth: usize) -> Graph {
        let mut b = GraphBuilder::new("cnn", TensorShape::chw(3, 96, 96));
        let x = b.source();
        let mut t = b.conv(&x, 24, 3, 1, 1);
        for i in 0..depth {
            let stride = if i % 3 == 2 { 2 } else { 1 };
            let ch = 24 * (1 + i as u64 / 3);
            let c = b.conv(&t, ch, 3, stride, 1);
            t = b.relu(&c);
        }
        let g = b.gavgpool(&t);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn evolve_produces_valid_spec() {
        let g = cnn(12);
        let dev = DeviceConfig::default();
        let out = evolve(&g, &dev, &GaConfig::new(3));
        assert_eq!(out.best.block_count(), 3);
        assert!(out.best_profile.std_us.is_finite());
        assert!(!out.history.is_empty());
        assert_eq!(out.history.len(), out.generations_run);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cnn(10);
        let dev = DeviceConfig::default();
        let a = evolve(&g, &dev, &GaConfig::new(2).with_seed(7));
        let b = evolve(&g, &dev, &GaConfig::new(2).with_seed(7));
        assert_eq!(a.best.cuts(), b.best.cuts());
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn outcome_bit_identical_across_thread_counts() {
        // The pool's determinism contract: seeded RNG stays on the caller's
        // thread and collection is index-ordered, so the whole GaOutcome —
        // best spec, profile, and every history row — is bit-identical at
        // any SPLIT_THREADS.
        let g = cnn(14);
        let dev = DeviceConfig::default();
        let cfg = GaConfig::new(3).with_seed(13);
        let seq = rayon::with_threads(1, || evolve(&g, &dev, &cfg));
        for threads in [2, 8] {
            let par = rayon::with_threads(threads, || evolve(&g, &dev, &cfg));
            assert_eq!(par.best.cuts(), seq.best.cuts(), "threads={threads}");
            assert_eq!(par.best_profile, seq.best_profile, "threads={threads}");
            assert_eq!(par.generations_run, seq.generations_run);
            assert_eq!(par.history.len(), seq.history.len());
            for (a, b) in par.history.iter().zip(&seq.history) {
                assert_eq!(a.generation, b.generation);
                assert_eq!(a.candidates_profiled, b.candidates_profiled);
                assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
                assert_eq!(a.best_std_us.to_bits(), b.best_std_us.to_bits());
                assert_eq!(a.best_overhead.to_bits(), b.best_overhead.to_bits());
            }
        }
    }

    #[test]
    fn best_fitness_never_degrades() {
        let g = cnn(14);
        let dev = DeviceConfig::default();
        let out = evolve(&g, &dev, &GaConfig::new(4));
        for w in out.history.windows(2) {
            assert!(w[1].best_fitness >= w[0].best_fitness - 1e-12);
        }
    }

    #[test]
    fn ga_beats_random_single_candidate() {
        let g = cnn(16);
        let dev = DeviceConfig::default();
        let out = evolve(&g, &dev, &GaConfig::new(2));
        // The GA's best 2-block split must be at least as even as a naive
        // midpoint-by-index split.
        let naive = SplitSpec::new(&g, vec![g.op_count() / 2]).unwrap();
        let naive_p = profiler::profile_split(&g, &naive, &dev);
        assert!(out.best_profile.std_us <= naive_p.std_us + 1e-9);
    }

    #[test]
    fn finds_optimum_on_small_model() {
        // Small enough to check against brute force over all single cuts.
        let g = cnn(8);
        let dev = DeviceConfig::default();
        let out = evolve(&g, &dev, &GaConfig::new(2));
        let brute = (1..g.op_count())
            .map(|c| {
                let p = profiler::profile_split(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
                crate::fitness::fitness(&p)
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let got = crate::fitness::fitness(&out.best_profile);
        assert!((brute - got) < 1e-9, "GA {got} vs brute {brute}");
    }

    #[test]
    fn early_stop_respects_patience() {
        let g = cnn(8);
        let dev = DeviceConfig::default();
        let mut cfg = GaConfig::new(2);
        cfg.generations = 100;
        cfg.patience = 3;
        let out = evolve(&g, &dev, &cfg);
        assert!(out.generations_run < 100, "ran {}", out.generations_run);
    }

    #[test]
    fn guided_init_samples_avoid_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 200;
        let mut front = 0;
        for _ in 0..2000 {
            let c = sample_position(m, InitStrategy::Guided, &mut rng);
            assert!((1..m).contains(&c));
            if c < m / 10 {
                front += 1;
            }
        }
        // Guided sampling essentially never lands in the first decile.
        assert!(front < 20, "{front} front samples");
    }

    #[test]
    fn uniform_init_covers_front() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 200;
        let front = (0..2000)
            .filter(|_| sample_position(m, InitStrategy::Uniform, &mut rng) < m / 10)
            .count();
        // Uniform puts ~9.5% of mass in the first decile.
        assert!(front > 100, "{front}");
    }

    #[test]
    fn single_point_crossover_also_finds_optimum() {
        let g = cnn(8);
        let dev = DeviceConfig::default();
        let cfg = GaConfig::new(2).with_crossover(CrossoverOp::SinglePoint);
        let out = evolve(&g, &dev, &cfg);
        let brute = (1..g.op_count())
            .map(|c| {
                let p = profiler::profile_split(&g, &SplitSpec::new(&g, vec![c]).unwrap(), &dev);
                crate::fitness::fitness(&p)
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let got = crate::fitness::fitness(&out.best_profile);
        assert!(
            (brute - got) < 1e-9,
            "single-point GA {got} vs brute {brute}"
        );
    }

    #[test]
    fn crossover_ops_diverge_but_both_are_valid() {
        let g = cnn(14);
        let dev = DeviceConfig::default();
        for op in [CrossoverOp::Uniform, CrossoverOp::SinglePoint] {
            let out = evolve(&g, &dev, &GaConfig::new(4).with_crossover(op));
            assert_eq!(out.best.block_count(), 4, "{op:?}");
            SplitSpec::new(&g, out.best.cuts().to_vec()).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "no-op")]
    fn one_block_is_rejected() {
        let g = cnn(8);
        evolve(&g, &DeviceConfig::default(), &GaConfig::new(1));
    }
}
