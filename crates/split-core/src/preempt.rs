//! Fast greedy preemption based on response ratio (paper §3.4,
//! Algorithm 1).
//!
//! Every request arrival asks: where in the waiting queue should the new
//! request go? Recomputing a globally optimal order is too slow for
//! millisecond-scale inference, so SPLIT exploits three facts the paper
//! proves out:
//!
//! 1. all blocks of a request should preempt **together** (full preemption,
//!    Figure 3) — so the queue holds whole requests, never loose blocks;
//! 2. swapping two *neighbors* never changes anyone else's waiting time —
//!    so a greedy bubble pass is sound;
//! 3. requests of the same task type must stay FIFO — equal execution time
//!    and equal targets mean reordering them can only hurt.
//!
//! The algorithm appends the new request at the tail and bubbles it
//! forward past each neighbor while doing so lowers the *pair's average
//! response ratio*, stopping at the queue head, at a same-task neighbor,
//! or when a swap stops helping — exactly the three stopping conditions of
//! §3.4. Worst case O(n) response-ratio evaluations; typically O(k) where
//! k is the number of distinct task types present.
//!
//! The response ratio follows Algorithm 1's `ResponseRatio`: predicted
//! end-to-end latency over the *latency target* `α·Ext(t)` (footnote 3,
//! after PREMA), so a ratio above 1 predicts a QoS violation.

use serde::{Deserialize, Serialize};

/// One waiting request as the preemption algorithm sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// Request id (for tracing; not used in decisions).
    pub id: u64,
    /// Task type — requests of the same task stay FIFO.
    pub task: u32,
    /// Isolated execution time `Ext(t)`, µs (the vanilla model time).
    pub exec_us: f64,
    /// Remaining device time this request still needs (all its unexecuted
    /// blocks, including splitting overhead), µs.
    pub left_us: f64,
    /// Arrival time, µs.
    pub arrival_us: f64,
}

/// Response ratio of a request given its predicted remaining wait
/// (Algorithm 1's `ResponseRatio`):
/// `(waited + waiting + left) / (α · exec)`.
///
/// `waited` is time already spent in the system (`now − arrival`);
/// `waiting_us` the predicted further wait before its turn.
#[inline]
pub fn response_ratio(entry: &QueueEntry, waiting_us: f64, now_us: f64, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0);
    let waited = (now_us - entry.arrival_us).max(0.0);
    let target = alpha * entry.exec_us;
    (waited + waiting_us + entry.left_us) / target
}

/// Outcome of one preemption decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreemptDecision {
    /// Index at which the new request was inserted.
    pub position: usize,
    /// How many neighbor comparisons the bubble pass made.
    pub comparisons: usize,
    /// Which stopping condition ended the pass.
    pub stop: StopReason,
}

/// Why the bubble pass stopped (§3.4's three conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Reached the head of the queue: the new request has top priority.
    QueueHead,
    /// The neighbor ahead is the same task type (FIFO per task).
    SameTask,
    /// Swapping would not lower the pair's average response ratio.
    NoGain,
}

/// Insert `new` into `queue` (ordered head-first) with the greedy
/// preemption rule. `base_wait_us` is the device time before the queue
/// head can start (the non-preemptible remainder of the in-flight block).
///
/// Returns the decision; `queue` is modified in place.
///
/// ```
/// use split_core::{greedy_preempt, QueueEntry};
///
/// // A long request waits; a short one arrives and preempts it.
/// let mut queue = vec![QueueEntry {
///     id: 1, task: 0, exec_us: 60_000.0, left_us: 66_000.0, arrival_us: 0.0,
/// }];
/// let short = QueueEntry {
///     id: 2, task: 1, exec_us: 5_000.0, left_us: 5_000.0, arrival_us: 100.0,
/// };
/// let decision = greedy_preempt(&mut queue, short, 0.0, 100.0, 4.0);
/// assert_eq!(decision.position, 0);
/// assert_eq!(queue[0].id, 2);
/// ```
pub fn greedy_preempt(
    queue: &mut Vec<QueueEntry>,
    new: QueueEntry,
    base_wait_us: f64,
    now_us: f64,
    alpha: f64,
) -> PreemptDecision {
    // Wait ahead of `new` if it sits at the tail: base + everyone's left.
    let mut wait_before: f64 = base_wait_us + queue.iter().map(|e| e.left_us).sum::<f64>();
    let mut pos = queue.len();
    let mut comparisons = 0usize;
    let mut stop = StopReason::QueueHead;

    while pos > 0 {
        let ahead = &queue[pos - 1];
        if ahead.task == new.task {
            stop = StopReason::SameTask;
            break;
        }
        comparisons += 1;
        // Wait of the pair's front slot (everything ahead of `ahead`).
        let front_wait = wait_before - ahead.left_us;

        // Current order: ahead first, new second.
        let rr_ahead_front = response_ratio(ahead, front_wait, now_us, alpha);
        let rr_new_back = response_ratio(&new, front_wait + ahead.left_us, now_us, alpha);
        // Swapped: new first, ahead second.
        let rr_new_front = response_ratio(&new, front_wait, now_us, alpha);
        let rr_ahead_back = response_ratio(ahead, front_wait + new.left_us, now_us, alpha);

        let current = rr_ahead_front + rr_new_back;
        let swapped = rr_new_front + rr_ahead_back;
        if swapped + 1e-12 < current {
            pos -= 1;
            wait_before = front_wait;
        } else {
            stop = StopReason::NoGain;
            break;
        }
    }

    queue.insert(pos, new);
    PreemptDecision {
        position: pos,
        comparisons,
        stop,
    }
}

/// The paper's Algorithm 1, transliterated.
///
/// The pseudocode walks `i = 1..N` while maintaining
/// `l_waiting = Σ Ext(t_n)` and subtracting one request's remaining time
/// per step — i.e. it considers insertion slots from the **tail toward the
/// head**, comparing the new request's response-ratio delta against the
/// displaced request's. Spelled out, the insertion condition at each step
/// is exactly "swapping the pair lowers their summed response ratio",
/// which is what [`greedy_preempt`] implements as a bubble pass; the
/// equivalence is property-tested (`tests/prop_preempt.rs`). This
/// transliteration exists so a reader can diff the code against the
/// paper line by line.
///
/// Differences from the printed pseudocode, both necessary for it to be
/// executable (and both noted in DESIGN.md):
/// * line 6's same-type early-return inserts the new request *behind* the
///   matching request (FIFO per task, §3.4) rather than dropping it;
/// * line 12's `ResponseRatio(l_waiting + Ext_left(t_i), t_i, T)` reads as
///   the displaced request's ratio *after* being jumped, which requires
///   adding the **new** request's remaining time (`Ext_left(t_new)`), not
///   its own — the printed subscript is a typo.
pub fn algorithm1_preempt(
    queue: &mut Vec<QueueEntry>,
    new: QueueEntry,
    base_wait_us: f64,
    now_us: f64,
    alpha: f64,
) -> PreemptDecision {
    let n = queue.len();
    // l_waiting ← Σ Ext_left(t_n) (+ the in-flight block everyone waits on).
    let mut l_waiting: f64 = base_wait_us + queue.iter().map(|e| e.left_us).sum::<f64>();
    let mut comparisons = 0usize;

    // i = 1 is the LAST queued request, i = N the first (see module docs).
    for i in 0..n {
        let t_i = &queue[n - 1 - i];
        if t_i.task == new.task {
            // FIFO per task: the new request goes right behind its sibling.
            let pos = n - i;
            queue.insert(pos, new);
            return PreemptDecision {
                position: pos,
                comparisons,
                stop: StopReason::SameTask,
            };
        }
        comparisons += 1;
        // RR of the new request behind / in front of t_i.
        let rr_new_back = response_ratio(&new, l_waiting, now_us, alpha);
        l_waiting -= t_i.left_us;
        let rr_new_front = response_ratio(&new, l_waiting, now_us, alpha);
        // RR of t_i if jumped (waits the new request's time too) / not.
        let rr_i_back = response_ratio(t_i, l_waiting + new.left_us, now_us, alpha);
        let rr_i_front = response_ratio(t_i, l_waiting, now_us, alpha);

        // Keep bubbling only while the swap lowers the pair's total RR;
        // otherwise insert behind t_i.
        let gain_new = rr_new_back - rr_new_front;
        let loss_i = rr_i_back - rr_i_front;
        if gain_new <= loss_i + 1e-12 {
            let pos = n - i;
            queue.insert(pos, new);
            return PreemptDecision {
                position: pos,
                comparisons,
                stop: StopReason::NoGain,
            };
        }
    }

    queue.insert(0, new);
    PreemptDecision {
        position: 0,
        comparisons,
        stop: StopReason::QueueHead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, task: u32, exec: f64, arrival: f64) -> QueueEntry {
        QueueEntry {
            id,
            task,
            exec_us: exec,
            left_us: exec,
            arrival_us: arrival,
        }
    }

    const ALPHA: f64 = 4.0;

    #[test]
    fn empty_queue_inserts_at_head() {
        let mut q = Vec::new();
        let d = greedy_preempt(&mut q, entry(1, 0, 100.0, 0.0), 0.0, 0.0, ALPHA);
        assert_eq!(d.position, 0);
        assert_eq!(d.stop, StopReason::QueueHead);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn short_preempts_long() {
        // A long request waits; a short one arrives: the short one's RR
        // gain dwarfs the long one's loss, so it jumps ahead.
        let mut q = vec![entry(1, 0, 60_000.0, 0.0)];
        let d = greedy_preempt(&mut q, entry(2, 1, 5_000.0, 0.0), 0.0, 0.0, ALPHA);
        assert_eq!(d.position, 0, "short request must preempt");
        assert_eq!(q[0].id, 2);
        assert_eq!(q[1].id, 1);
    }

    #[test]
    fn long_does_not_preempt_short() {
        let mut q = vec![entry(1, 1, 5_000.0, 0.0)];
        let d = greedy_preempt(&mut q, entry(2, 0, 60_000.0, 0.0), 0.0, 0.0, ALPHA);
        assert_eq!(d.position, 1, "long request must queue behind");
        assert_eq!(d.stop, StopReason::NoGain);
    }

    #[test]
    fn same_task_stays_fifo() {
        let mut q = vec![entry(1, 3, 10_000.0, 0.0)];
        let d = greedy_preempt(&mut q, entry(2, 3, 10_000.0, 100.0), 0.0, 100.0, ALPHA);
        assert_eq!(d.position, 1);
        assert_eq!(d.stop, StopReason::SameTask);
        assert_eq!(d.comparisons, 0, "same-task check precedes any RR math");
    }

    #[test]
    fn same_task_blocks_further_bubbling() {
        // Queue: [long(task0), short(task7)]; new short of task7 cannot
        // pass its sibling even though it could pass the long one.
        let mut q = vec![entry(1, 7, 5_000.0, 0.0), entry(2, 0, 60_000.0, 0.0)];
        let d = greedy_preempt(&mut q, entry(3, 7, 5_000.0, 10.0), 0.0, 10.0, ALPHA);
        // Bubbles past the long request (tail) then stops at the sibling.
        assert_eq!(q.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(d.stop, StopReason::SameTask);
    }

    #[test]
    fn worst_case_comparisons_are_linear() {
        // N distinct long tasks ahead; a very short new request bubbles all
        // the way to the head: exactly N comparisons.
        let n = 64;
        let mut q: Vec<QueueEntry> = (0..n)
            .map(|i| entry(i as u64, i as u32, 50_000.0, 0.0))
            .collect();
        let d = greedy_preempt(&mut q, entry(999, 999, 100.0, 0.0), 0.0, 0.0, ALPHA);
        assert_eq!(d.position, 0);
        assert_eq!(d.comparisons, n);
        assert_eq!(d.stop, StopReason::QueueHead);
    }

    #[test]
    fn swap_improves_pair_average_every_time() {
        // Whatever the queue, after insertion the pair-average RR cannot be
        // improved by moving the new request one step in either direction.
        let now = 1_000.0;
        let mut q = vec![
            entry(1, 0, 40_000.0, 0.0),
            entry(2, 1, 9_000.0, 100.0),
            entry(3, 2, 25_000.0, 200.0),
        ];
        let new = entry(4, 3, 12_000.0, now);
        let base = 500.0;
        let d = greedy_preempt(&mut q, new.clone(), base, now, ALPHA);
        let pos = d.position;

        let pair_sum = |q: &Vec<QueueEntry>, i: usize| {
            let front_wait: f64 = base + q[..i].iter().map(|e| e.left_us).sum::<f64>();
            response_ratio(&q[i], front_wait, now, ALPHA)
                + response_ratio(&q[i + 1], front_wait + q[i].left_us, now, ALPHA)
        };

        // Moving the new request back by one must not lower that pair sum.
        if pos + 1 < q.len() {
            let mut alt = q.clone();
            alt.swap(pos, pos + 1);
            assert!(pair_sum(&alt, pos) + 1e-12 >= pair_sum(&q, pos));
        }
        // Moving it forward by one must not lower that pair sum either
        // (that's exactly why the bubble stopped).
        if pos > 0 && q[pos - 1].task != q[pos].task {
            let mut alt = q.clone();
            alt.swap(pos - 1, pos);
            assert!(pair_sum(&alt, pos - 1) + 1e-12 >= pair_sum(&q, pos - 1));
        }
    }

    #[test]
    fn response_ratio_matches_eq3() {
        // RR = (waited + waiting + left) / (α·exec).
        let e = QueueEntry {
            id: 1,
            task: 0,
            exec_us: 10_000.0,
            left_us: 11_000.0,
            arrival_us: 500.0,
        };
        let rr = response_ratio(&e, 2_000.0, 3_000.0, 2.0);
        // waited = 2500, waiting = 2000, left = 11000, target = 20000.
        assert!((rr - (2_500.0 + 2_000.0 + 11_000.0) / 20_000.0).abs() < 1e-12);
    }

    #[test]
    fn base_wait_penalizes_everyone_equally() {
        // The in-flight block delays all candidates identically, so it must
        // not change the chosen order — only the absolute ratios.
        let mk = || vec![entry(1, 0, 60_000.0, 0.0), entry(2, 1, 30_000.0, 0.0)];
        let mut q1 = mk();
        let mut q2 = mk();
        let d1 = greedy_preempt(&mut q1, entry(3, 2, 5_000.0, 0.0), 0.0, 0.0, ALPHA);
        let d2 = greedy_preempt(&mut q2, entry(3, 2, 5_000.0, 0.0), 20_000.0, 0.0, ALPHA);
        assert_eq!(d1.position, d2.position);
    }
}
