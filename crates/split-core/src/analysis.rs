//! The waiting-latency analysis behind evenly-sized splitting (paper Eq. 1).
//!
//! Suppose a long model is split into `n` blocks with execution times
//! `{t_1, …, t_n}` and a short request arrives uniformly at random while
//! the long model runs (blocks are non-preemptible, so the short request
//! waits for the *current block* to finish). Its expected waiting latency
//! is
//!
//! ```text
//! E[wait] = (1/2) · Σ t_i² / Σ t_i = (1/2) · (σ²/t̄ + t̄)
//! ```
//!
//! Two consequences drive the whole design:
//! * for a fixed number of blocks, waiting is minimized when the blocks are
//!   *even* (σ → 0), and
//! * for even blocks, waiting falls like `t̄/2` as blocks shrink — but the
//!   splitting overhead grows with block count, so an **optimal number of
//!   blocks exists** (the hyperbola the paper mentions after Eq. 1).

/// Expected waiting latency (µs) of a uniformly-arriving request over the
/// given block times (µs) — the exact Eq. 1 left-hand side.
pub fn expected_waiting_us(block_times_us: &[f64]) -> f64 {
    let total: f64 = block_times_us.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = block_times_us.iter().map(|t| t * t).sum();
    0.5 * sum_sq / total
}

/// Eq. 1 right-hand side: `(σ²/t̄ + t̄)/2` from the block-time moments.
/// Mathematically identical to [`expected_waiting_us`]; kept separate so a
/// property test can confirm the paper's algebra.
pub fn expected_waiting_via_moments(block_times_us: &[f64]) -> f64 {
    let n = block_times_us.len();
    if n == 0 {
        return 0.0;
    }
    let mean = block_times_us.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = block_times_us
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum::<f64>()
        / n as f64;
    0.5 * (var / mean + mean)
}

/// Monte-Carlo estimate of the same quantity: drop `samples` arrivals
/// uniformly in `[0, Σt)` and average the residual time of the block in
/// progress. Used by tests to validate the closed form against the
/// mechanism it models.
pub fn monte_carlo_waiting_us(block_times_us: &[f64], samples: usize, seed: u64) -> f64 {
    use rand::prelude::*;
    let total: f64 = block_times_us.iter().sum();
    if total <= 0.0 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..samples {
        let arrive = rng.random_range(0.0..total);
        let mut edge = 0.0;
        for &t in block_times_us {
            edge += t;
            if arrive < edge {
                acc += edge - arrive;
                break;
            }
        }
    }
    acc / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_waits_half_its_time() {
        assert!((expected_waiting_us(&[100.0]) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn even_blocks_wait_half_a_block() {
        // Four even 25µs blocks: expected wait 12.5µs.
        assert!((expected_waiting_us(&[25.0; 4]) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn uneven_blocks_wait_longer_than_even() {
        // Same total (100), same count.
        let even = expected_waiting_us(&[50.0, 50.0]);
        let uneven = expected_waiting_us(&[90.0, 10.0]);
        assert!(uneven > even);
        // Exact: (8100+100)/200/... => 0.5*8200/100 = 41 vs 25.
        assert!((even - 25.0).abs() < 1e-12);
        assert!((uneven - 41.0).abs() < 1e-12);
    }

    #[test]
    fn closed_forms_agree() {
        let cases: &[&[f64]] = &[
            &[10.0],
            &[30.0, 70.0],
            &[5.0, 5.0, 5.0, 85.0],
            &[1.0, 2.0, 3.0, 4.0],
        ];
        for c in cases {
            let a = expected_waiting_us(c);
            let b = expected_waiting_via_moments(c);
            assert!((a - b).abs() < 1e-9, "{c:?}: {a} vs {b}");
        }
    }

    #[test]
    fn monte_carlo_validates_eq1() {
        let blocks = [12.0, 30.0, 8.0, 50.0];
        let exact = expected_waiting_us(&blocks);
        let mc = monte_carlo_waiting_us(&blocks, 200_000, 42);
        assert!(
            (mc - exact).abs() / exact < 0.02,
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(expected_waiting_us(&[]), 0.0);
        assert_eq!(expected_waiting_via_moments(&[]), 0.0);
        assert_eq!(monte_carlo_waiting_us(&[], 100, 1), 0.0);
    }

    #[test]
    fn more_even_blocks_reduce_waiting_hyperbolically() {
        // 100µs of work split into n even blocks waits 50/n.
        for n in 1..=10usize {
            let blocks = vec![100.0 / n as f64; n];
            let w = expected_waiting_us(&blocks);
            assert!((w - 50.0 / n as f64).abs() < 1e-9);
        }
    }
}
