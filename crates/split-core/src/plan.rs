//! Split plans: the artifact of the offline stage.
//!
//! The paper's workflow (§4.1) runs the genetic algorithm **offline**, once
//! per deployed model, and stores the resulting blocks; the online
//! scheduler then works purely from the stored plan. [`SplitPlan`] is that
//! stored result, and [`PlanSet`] the per-deployment collection the online
//! side consults.

use crate::fitness::fitness;
use crate::ga::{evolve_on, GaConfig, GaOutcome};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use profiler::{profile_split_on, profile_unsplit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The offline splitting decision for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Model name (matches `Graph::name`).
    pub model: String,
    /// Chosen cut positions (empty = run vanilla).
    pub cuts: Vec<usize>,
    /// Declared boundary transfer volume at each cut, bytes — the live
    /// tensors the runtime must move across each block boundary. The plan
    /// linter (`split-analyze`) verifies these against the graph's live
    /// sets. Empty on plans saved before this field existed.
    #[serde(default)]
    pub transfer_bytes: Vec<u64>,
    /// Profiled per-block times, µs (a single entry when unsplit).
    pub block_times_us: Vec<f64>,
    /// Vanilla model time, µs.
    pub vanilla_us: f64,
    /// Splitting overhead ratio of the chosen plan.
    pub overhead_ratio: f64,
    /// σ of block times, µs.
    pub std_us: f64,
    /// Eq. 2 fitness of the chosen plan.
    pub fitness: f64,
}

impl SplitPlan {
    /// Plan that runs the model unsplit.
    pub fn vanilla(graph: &Graph, dev: &DeviceConfig) -> Self {
        let p = profile_unsplit(graph, dev);
        Self {
            model: graph.name.clone(),
            cuts: Vec::new(),
            transfer_bytes: Vec::new(),
            block_times_us: p.block_times_us.clone(),
            vanilla_us: p.vanilla_us,
            overhead_ratio: 0.0,
            std_us: 0.0,
            fitness: fitness(&p),
        }
    }

    /// Plan from an explicit split spec.
    pub fn from_spec(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> Self {
        Self::from_spec_on(graph, &CostTable::build(graph, dev), spec)
    }

    /// [`SplitPlan::from_spec`] against a prebuilt [`CostTable`] — both
    /// the profile and the declared `transfer_bytes` come from the table
    /// (its boundary volumes are the graph's exact live-set bytes).
    pub fn from_spec_on(graph: &Graph, table: &CostTable, spec: &SplitSpec) -> Self {
        let p = profile_split_on(table, spec);
        Self {
            model: graph.name.clone(),
            cuts: spec.cuts().to_vec(),
            transfer_bytes: spec
                .cuts()
                .iter()
                .map(|&c| table.boundary_bytes(c))
                .collect(),
            block_times_us: p.block_times_us.clone(),
            vanilla_us: p.vanilla_us,
            overhead_ratio: p.overhead_ratio,
            std_us: p.std_us,
            fitness: fitness(&p),
        }
    }

    /// Run the offline GA for each block count in `block_range` and keep
    /// the fittest result — the full §3.3 offline stage for one model.
    /// Returns the plan and the winning GA run's history.
    ///
    /// One [`CostTable`] is built for the whole range and shared by every
    /// GA run (and the elastic controller's re-planning path, which goes
    /// through here), so candidate profiling is `O(cuts)` throughout.
    pub fn offline(
        graph: &Graph,
        dev: &DeviceConfig,
        block_range: std::ops::RangeInclusive<usize>,
        seed: u64,
    ) -> (Self, GaOutcome) {
        let table = CostTable::build(graph, dev);
        let mut best: Option<(Self, GaOutcome)> = None;
        for blocks in block_range {
            let cfg = GaConfig::new(blocks).with_seed(seed ^ blocks as u64);
            let out = evolve_on(graph, &table, &cfg);
            let plan = Self::from_spec_on(graph, &table, &out.best);
            let better = match &best {
                None => true,
                Some((b, _)) => plan.fitness > b.fitness,
            };
            if better {
                best = Some((plan, out));
            }
        }
        best.expect("non-empty block range")
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_times_us.len()
    }

    /// Total device time when run split, µs.
    pub fn total_us(&self) -> f64 {
        self.block_times_us.iter().sum()
    }

    /// True when the plan actually splits the model.
    pub fn is_split(&self) -> bool {
        !self.cuts.is_empty()
    }
}

/// Per-deployment collection of plans, keyed by model name.
///
/// Stored in a `BTreeMap` so iteration, serialization, and the files
/// written by [`PlanSet::save`] are deterministic — a `HashMap` here made
/// `plans.json` key order (and everything downstream of [`PlanSet::iter`])
/// vary from run to run, which the `split-analyze` determinism auditor
/// flags.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PlanSet {
    plans: BTreeMap<String, SplitPlan>,
}

impl PlanSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (replacing any previous plan for the model).
    pub fn insert(&mut self, plan: SplitPlan) {
        self.plans.insert(plan.model.clone(), plan);
    }

    /// Look up a model's plan.
    pub fn get(&self, model: &str) -> Option<&SplitPlan> {
        self.plans.get(model)
    }

    /// Number of plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plans are stored.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterate over plans in model-name order.
    pub fn iter(&self) -> impl Iterator<Item = &SplitPlan> {
        self.plans.values()
    }

    /// Persist to a JSON file (the paper stores split results next to the
    /// .onnx blocks; we store the metadata that regenerates them).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("plans serialize");
        std::fs::write(path, json)
    }

    /// Load from a JSON file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("toy", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let mut t = b.conv(&x, 16, 3, 1, 1);
        for i in 0..10 {
            let c = b.conv(&t, 16 + 8 * (i / 3), 3, if i % 4 == 3 { 2 } else { 1 }, 1);
            t = b.relu(&c);
        }
        b.finish()
    }

    #[test]
    fn vanilla_plan_is_one_block() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let p = SplitPlan::vanilla(&g, &dev);
        assert_eq!(p.block_count(), 1);
        assert!(!p.is_split());
        assert_eq!(p.total_us(), p.vanilla_us);
    }

    #[test]
    fn offline_picks_a_split() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let (plan, out) = SplitPlan::offline(&g, &dev, 2..=3, 11);
        assert!(plan.is_split());
        assert!(plan.block_count() == 2 || plan.block_count() == 3);
        assert!(!out.history.is_empty());
        // The chosen plan's fitness matches re-profiling its spec.
        let spec = SplitSpec::new(&g, plan.cuts.clone()).unwrap();
        let again = SplitPlan::from_spec(&g, &spec, &dev);
        assert!((again.fitness - plan.fitness).abs() < 1e-12);
    }

    #[test]
    fn plan_set_file_round_trip() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut set = PlanSet::new();
        set.insert(SplitPlan::vanilla(&g, &dev));
        set.insert(SplitPlan::from_spec(
            &g,
            &SplitSpec::new(&g, vec![4]).unwrap(),
            &dev,
        ));
        // from_spec replaced the vanilla plan for the same model.
        assert_eq!(set.len(), 1);
        let dir = std::env::temp_dir().join("split_core_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        set.save(&path).unwrap();
        let back = PlanSet::load(&path).unwrap();
        assert_eq!(back.get("toy").unwrap(), set.get("toy").unwrap());
        assert!(PlanSet::load(&dir.join("missing.json")).is_err());
    }

    #[test]
    fn plan_set_round_trip() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut set = PlanSet::new();
        assert!(set.is_empty());
        set.insert(SplitPlan::vanilla(&g, &dev));
        assert_eq!(set.len(), 1);
        assert!(set.get("toy").is_some());
        assert!(set.get("nonexistent").is_none());
        // serde round trip
        let json = serde_json::to_string(&set).unwrap();
        let back: PlanSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("toy").unwrap(), set.get("toy").unwrap());
    }
}
