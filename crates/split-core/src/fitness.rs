//! The genetic algorithm's fitness function (paper Eq. 2):
//!
//! ```text
//! fitness = −( e^(σ/T − 1) + e^(overhead/m − 1) )
//! ```
//!
//! where `σ` is the standard deviation of block execution times, `T` the
//! vanilla model's execution time, `overhead` the splitting-overhead ratio
//! (footnote 2), and `m` the number of blocks. Both terms are normalized
//! into comparable exponential penalties: evenness dominates (σ/T is the
//! first-order QoS lever per Eq. 1) while the overhead term keeps the GA
//! from chasing evenness at any price.

use profiler::BlockProfile;
use serde::{Deserialize, Serialize};

/// The two penalty terms of Eq. 2, kept separate for inspection/benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessParts {
    /// `e^(σ/T − 1)` — the unevenness penalty.
    pub evenness_penalty: f64,
    /// `e^(overhead/m − 1)` — the splitting-overhead penalty.
    pub overhead_penalty: f64,
}

impl FitnessParts {
    /// Combine per Eq. 2.
    pub fn fitness(&self) -> f64 {
        -(self.evenness_penalty + self.overhead_penalty)
    }
}

/// Compute the Eq. 2 parts for a profiled split candidate.
pub fn fitness_parts(profile: &BlockProfile) -> FitnessParts {
    let m = profile.block_count().max(1) as f64;
    let sigma_over_t = if profile.vanilla_us > 0.0 {
        profile.std_us / profile.vanilla_us
    } else {
        0.0
    };
    FitnessParts {
        evenness_penalty: (sigma_over_t - 1.0).exp(),
        overhead_penalty: (profile.overhead_ratio / m - 1.0).exp(),
    }
}

/// Eq. 2 fitness of a profiled split candidate (higher is better; always
/// negative).
pub fn fitness(profile: &BlockProfile) -> f64 {
    fitness_parts(profile).fitness()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(block_times: Vec<f64>, vanilla: f64) -> BlockProfile {
        let total: f64 = block_times.iter().sum();
        BlockProfile {
            cuts: vec![0; block_times.len().saturating_sub(1)],
            overhead_ratio: (total - vanilla) / vanilla,
            std_us: profiler::population_std(&block_times),
            mean_us: profiler::mean(&block_times),
            range_pct: profiler::range_pct(&block_times),
            block_times_us: block_times,
            vanilla_us: vanilla,
        }
    }

    #[test]
    fn fitness_is_negative() {
        let p = profile(vec![50.0, 52.0], 100.0);
        assert!(fitness(&p) < 0.0);
    }

    #[test]
    fn more_even_is_fitter() {
        let even = profile(vec![55.0, 55.0], 100.0);
        let uneven = profile(vec![90.0, 20.0], 100.0);
        assert!(fitness(&even) > fitness(&uneven));
    }

    #[test]
    fn less_overhead_is_fitter() {
        let cheap = profile(vec![51.0, 51.0], 100.0);
        let costly = profile(vec![70.0, 70.0], 100.0);
        assert!(fitness(&cheap) > fitness(&costly));
    }

    #[test]
    fn parts_recombine() {
        let p = profile(vec![40.0, 70.0], 100.0);
        let parts = fitness_parts(&p);
        assert!((parts.fitness() - fitness(&p)).abs() < 1e-15);
        assert!(parts.evenness_penalty > 0.0);
        assert!(parts.overhead_penalty > 0.0);
    }

    #[test]
    fn perfect_split_fitness_bound() {
        // σ=0, overhead=0: fitness = -2/e.
        let p = profile(vec![50.0, 50.0], 100.0);
        let expect = -2.0 * (-1.0f64).exp();
        assert!((fitness(&p) - expect).abs() < 1e-12);
    }
}
