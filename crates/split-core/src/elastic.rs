//! Elastic model splitting (paper §3.3, "Limitation of evenly-sized model
//! splitting and elastic model splitting in SPLIT").
//!
//! Splitting buys preemption opportunities at the price of splitting
//! overhead. Two workload regimes make that trade a loss:
//!
//! * **high request density** — the device is saturated, so the overhead
//!   directly grows the backlog and hurts everyone;
//! * **same-type floods** — requests of one task are FIFO among themselves
//!   (§3.4), so there is nothing to preempt *between* them and the
//!   overhead is pure waste.
//!
//! The [`ElasticController`] watches a sliding window of recent arrivals
//! and answers, per dispatch, whether the next request should run split or
//! vanilla. Hysteresis (distinct on/off thresholds) prevents flapping at
//! the boundary.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Elastic-splitting thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticConfig {
    /// Sliding-window length, µs.
    pub window_us: f64,
    /// Disable splitting when windowed arrival rate exceeds this
    /// (requests per second).
    pub density_off_per_s: f64,
    /// Re-enable splitting when the rate falls back below this
    /// (must be ≤ `density_off_per_s`; the gap is the hysteresis band).
    pub density_on_per_s: f64,
    /// Disable splitting when one task type exceeds this fraction of the
    /// windowed arrivals (requires at least `min_samples`).
    pub same_type_frac: f64,
    /// Minimum windowed arrivals before the same-type rule can trigger.
    pub min_samples: usize,
}

impl ElasticConfig {
    /// Check the documented constraints. Deserialized or hand-built
    /// configs must pass through here (the controller refuses invalid
    /// ones): the hysteresis band must not be inverted
    /// (`density_on_per_s ≤ density_off_per_s`), the window positive, the
    /// same-type fraction a fraction, and `min_samples` at least 1 (a
    /// zero-sample same-type rule would fire on an empty window).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.window_us.is_finite() && self.window_us > 0.0) {
            return Err(format!(
                "window_us must be positive, got {}",
                self.window_us
            ));
        }
        if !(self.density_off_per_s.is_finite() && self.density_off_per_s >= 0.0) {
            return Err(format!(
                "density_off_per_s must be finite and non-negative, got {}",
                self.density_off_per_s
            ));
        }
        if !(self.density_on_per_s.is_finite() && self.density_on_per_s >= 0.0) {
            return Err(format!(
                "density_on_per_s must be finite and non-negative, got {}",
                self.density_on_per_s
            ));
        }
        if self.density_on_per_s > self.density_off_per_s {
            return Err(format!(
                "hysteresis band inverted: density_on_per_s ({}) must be ≤ density_off_per_s ({})",
                self.density_on_per_s, self.density_off_per_s
            ));
        }
        if !(0.0..=1.0).contains(&self.same_type_frac) {
            return Err(format!(
                "same_type_frac must be within [0, 1], got {}",
                self.same_type_frac
            ));
        }
        if self.min_samples == 0 {
            return Err("min_samples must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            window_us: 500_000.0,
            // The Jetson-class device sustains ~35 req/s of the Table 1 mix;
            // beyond that the queue only grows and overhead is poison.
            density_off_per_s: 40.0,
            density_on_per_s: 30.0,
            same_type_frac: 0.75,
            min_samples: 6,
        }
    }
}

/// A point-in-time view of an [`ElasticController`] for observers
/// (dashboards, shutdown reports). Plain data: taking one never blocks
/// on anything the controller itself holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticSnapshot {
    /// Current mode (true = requests are dispatched split).
    pub splitting: bool,
    /// Arrivals currently inside the sliding window.
    pub window_len: usize,
    /// Windowed arrival rate (requests per second) the mode decisions
    /// are judged against.
    pub rate_per_s: f64,
}

/// Sliding-window arrival monitor deciding split vs. vanilla execution.
#[derive(Debug, Clone)]
pub struct ElasticController {
    cfg: ElasticConfig,
    /// Recent arrivals: (time, task type).
    window: VecDeque<(f64, u32)>,
    /// Current mode (true = splitting enabled).
    splitting: bool,
}

impl ElasticController {
    /// Controller with the given thresholds; splitting starts enabled.
    ///
    /// # Panics
    /// Panics when [`ElasticConfig::validate`] rejects `cfg`.
    pub fn new(cfg: ElasticConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ElasticConfig: {e}");
        }
        Self {
            cfg,
            window: VecDeque::new(),
            splitting: true,
        }
    }

    /// Record an arrival and return whether this request should be
    /// dispatched *split* (true) or vanilla (false).
    pub fn on_arrival(&mut self, now_us: f64, task: u32) -> bool {
        self.window.push_back((now_us, task));
        while let Some(&(t, _)) = self.window.front() {
            if now_us - t > self.cfg.window_us {
                self.window.pop_front();
            } else {
                break;
            }
        }

        let n = self.window.len();
        let rate_per_s = n as f64 / (self.cfg.window_us / 1e6);

        let mut dominant = 0usize;
        if n >= self.cfg.min_samples {
            // BTreeMap keeps the tally iteration deterministic (audited by
            // split-analyze; a HashMap is order-safe here only because max()
            // over counts is commutative, but determinism is cheaper than
            // that argument).
            let mut counts = std::collections::BTreeMap::new();
            for &(_, t) in &self.window {
                *counts.entry(t).or_insert(0usize) += 1;
            }
            dominant = counts.values().copied().max().unwrap_or(0);
        }
        let same_type_flood =
            n >= self.cfg.min_samples && (dominant as f64 / n as f64) >= self.cfg.same_type_frac;

        if self.splitting {
            if rate_per_s > self.cfg.density_off_per_s || same_type_flood {
                self.splitting = false;
            }
        } else if rate_per_s < self.cfg.density_on_per_s && !same_type_flood {
            self.splitting = true;
        }
        self.splitting
    }

    /// Current mode without recording an arrival.
    pub fn splitting_enabled(&self) -> bool {
        self.splitting
    }

    /// Windowed arrival count (for tests and telemetry).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Point-in-time view for observers; does not record an arrival.
    pub fn snapshot(&self) -> ElasticSnapshot {
        ElasticSnapshot {
            splitting: self.splitting,
            window_len: self.window.len(),
            rate_per_s: self.window.len() as f64 / (self.cfg.window_us / 1e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> ElasticController {
        ElasticController::new(ElasticConfig {
            window_us: 1_000_000.0, // 1 s window for easy arithmetic
            density_off_per_s: 10.0,
            density_on_per_s: 5.0,
            same_type_frac: 0.8,
            min_samples: 5,
        })
    }

    #[test]
    fn sparse_mixed_traffic_keeps_splitting() {
        let mut c = ctl();
        for i in 0..8 {
            // 2 req/s, alternating tasks.
            assert!(c.on_arrival(i as f64 * 500_000.0, (i % 4) as u32));
        }
    }

    #[test]
    fn density_flood_disables_splitting() {
        let mut c = ctl();
        let mut last = true;
        for i in 0..30 {
            // 30 requests in 1s, mixed types → 30/s >> 10/s.
            last = c.on_arrival(i as f64 * 33_000.0, (i % 5) as u32);
        }
        assert!(!last, "flood must disable splitting");
    }

    #[test]
    fn recovery_needs_hysteresis_band() {
        let mut c = ctl();
        for i in 0..30 {
            c.on_arrival(i as f64 * 33_000.0, (i % 5) as u32);
        }
        assert!(!c.splitting_enabled());
        // Rate between on (5/s) and off (10/s): 8/s → stays OFF.
        let mut t = 1_200_000.0;
        for i in 0..10 {
            c.on_arrival(t, (i % 5) as u32);
            t += 125_000.0;
        }
        assert!(!c.splitting_enabled(), "must not flap inside the band");
        // Rate clearly below 5/s → recovers.
        for i in 0..6 {
            t += 400_000.0;
            c.on_arrival(t, (i % 5) as u32);
        }
        assert!(c.splitting_enabled(), "must recover at low rate");
    }

    #[test]
    fn same_type_flood_disables_splitting() {
        let mut c = ctl();
        let mut last = true;
        for i in 0..8 {
            // Only 8/s... below density threshold? 8 < 10 → density ok,
            // but all the same task → FIFO makes splitting pointless.
            last = c.on_arrival(i as f64 * 125_000.0, 7);
        }
        assert!(!last, "same-type flood must disable splitting");
    }

    #[test]
    fn same_type_rule_needs_min_samples() {
        let mut c = ctl();
        // Three same-type arrivals: below min_samples, keep splitting.
        for i in 0..3 {
            assert!(c.on_arrival(i as f64 * 100_000.0, 7));
        }
    }

    #[test]
    fn window_expires_old_arrivals() {
        let mut c = ctl();
        for i in 0..20 {
            c.on_arrival(i as f64 * 10_000.0, (i % 3) as u32);
        }
        assert_eq!(c.window_len(), 20);
        c.on_arrival(10_000_000.0, 0);
        assert_eq!(c.window_len(), 1, "stale entries must be evicted");
    }

    #[test]
    fn snapshot_reflects_mode_and_window() {
        let mut c = ctl();
        let idle = c.snapshot();
        assert!(idle.splitting);
        assert_eq!(idle.window_len, 0);
        assert_eq!(idle.rate_per_s, 0.0);
        for i in 0..30 {
            c.on_arrival(i as f64 * 33_000.0, (i % 5) as u32);
        }
        let flooded = c.snapshot();
        assert!(!flooded.splitting, "flood must be visible to observers");
        assert_eq!(flooded.window_len, c.window_len());
        assert!(flooded.rate_per_s > 10.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis band inverted")]
    fn bad_band_rejected() {
        ElasticController::new(ElasticConfig {
            density_on_per_s: 50.0,
            density_off_per_s: 10.0,
            ..ElasticConfig::default()
        });
    }

    #[test]
    fn validate_accepts_default_and_flags_each_field() {
        assert!(ElasticConfig::default().validate().is_ok());
        // The documented `density_on_per_s ≤ density_off_per_s` constraint
        // (the satellite's inverted-band case) is now enforced.
        let inverted = ElasticConfig {
            density_on_per_s: 50.0,
            density_off_per_s: 10.0,
            ..ElasticConfig::default()
        };
        assert!(inverted.validate().unwrap_err().contains("inverted"));
        // Equal thresholds are a legal (degenerate, zero-width) band.
        let flat = ElasticConfig {
            density_on_per_s: 10.0,
            density_off_per_s: 10.0,
            ..ElasticConfig::default()
        };
        assert!(flat.validate().is_ok());
        let bad_window = ElasticConfig {
            window_us: 0.0,
            ..ElasticConfig::default()
        };
        assert!(bad_window.validate().unwrap_err().contains("window_us"));
        let nan_window = ElasticConfig {
            window_us: f64::NAN,
            ..ElasticConfig::default()
        };
        assert!(nan_window.validate().is_err());
        let nan_density = ElasticConfig {
            density_off_per_s: f64::NAN,
            ..ElasticConfig::default()
        };
        assert!(nan_density.validate().is_err());
        let bad_frac = ElasticConfig {
            same_type_frac: 1.5,
            ..ElasticConfig::default()
        };
        assert!(bad_frac.validate().unwrap_err().contains("same_type_frac"));
        let zero_samples = ElasticConfig {
            min_samples: 0,
            ..ElasticConfig::default()
        };
        assert!(zero_samples.validate().unwrap_err().contains("min_samples"));
    }
}
