#![warn(missing_docs)]
//! # split-core — the SPLIT paper's contribution
//!
//! Everything this crate contains is described in §3 of *SPLIT: QoS-Aware
//! DNN Inference on Shared GPU via Evenly-Sized Model Splitting*
//! (ICPP 2023):
//!
//! * [`analysis`] — the closed-form expected waiting latency of a randomly
//!   arriving request (Eq. 1), which motivates *evenly-sized* splitting;
//! * [`fitness`](mod@fitness) — the genetic algorithm's fitness function (Eq. 2)
//!   balancing evenness (σ/T) against splitting overhead;
//! * [`ga`] — the observation-guided genetic algorithm (§3.3) that selects
//!   cut points: initialization biased away from the expensive early
//!   operators, fitness-driven selection, crossover, mutation, elitism,
//!   and convergence detection;
//! * [`exhaustive`] — the brute-force baseline the GA is measured against
//!   (§2.2's candidate-count explosion);
//! * [`preempt`] — the fast greedy preemption algorithm based on response
//!   ratio (§3.4, Algorithm 1): O(n) worst case, microsecond-scale
//!   decisions;
//! * [`elastic`] — the elastic model splitting mechanism (§3.3's
//!   limitation paragraph) that suspends splitting under request floods or
//!   same-type bursts;
//! * [`plan`] — the serializable artifact of the offline stage: a model's
//!   chosen cuts plus their profiled block times.

pub mod analysis;
pub mod anneal;
pub mod elastic;
pub mod exhaustive;
pub mod fitness;
pub mod ga;
pub mod plan;
pub mod preempt;

pub use analysis::{expected_waiting_us, expected_waiting_via_moments};
pub use anneal::{anneal, AnnealConfig, AnnealOutcome};
pub use elastic::{ElasticConfig, ElasticController, ElasticSnapshot};
pub use exhaustive::{count_candidates, exhaustive_best};
pub use fitness::{fitness, FitnessParts};
pub use ga::{evolve, evolve_on, CrossoverOp, GaConfig, GaOutcome, GenStats, InitStrategy};
pub use plan::{PlanSet, SplitPlan};
pub use preempt::{
    algorithm1_preempt, greedy_preempt, response_ratio, PreemptDecision, QueueEntry,
};
