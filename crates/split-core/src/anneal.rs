//! Simulated-annealing splitter — the alternative heuristic §2.3 weighs.
//!
//! The paper argues generic heuristics pay "substantial search overhead"
//! unless guided by prior knowledge. This module provides a competitive,
//! tunable simulated-annealing search over the same Eq. 2 fitness so the
//! claim can be *measured* (see `bench/benches/ga_vs_exhaustive.rs` and
//! the search-quality comparison in `bin/search_methods`): SA with a
//! guided start matches the GA; SA from a cold uniform start needs more
//! evaluations for the same quality.

use crate::fitness::fitness;
use crate::ga::InitStrategy;
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::DeviceConfig;
use profiler::{BlockProfile, ProfileCache};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Simulated-annealing configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Number of blocks (`m`); the state is `m−1` cuts.
    pub blocks: usize,
    /// Total candidate evaluations.
    pub iterations: usize,
    /// Initial temperature (in fitness units; Eq. 2 fitness spans ~O(1)).
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Initial-state sampling (guided = §2.4 observations).
    pub init: InitStrategy,
}

impl AnnealConfig {
    /// Defaults sized to match the GA's evaluation budget (~300 profiles).
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            iterations: 300,
            t0: 0.05,
            cooling: 0.985,
            seed: 0xA11EA1,
            init: InitStrategy::Guided,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style init override.
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Best split found.
    pub best: SplitSpec,
    /// Its profile.
    pub best_profile: BlockProfile,
    /// Eq. 2 fitness of the best split.
    pub best_fitness: f64,
    /// Distinct candidates profiled.
    pub candidates_profiled: usize,
}

fn sample_state(graph: &Graph, cuts: usize, init: InitStrategy, rng: &mut StdRng) -> Vec<usize> {
    let m = graph.op_count();
    let mut out: Vec<usize> = Vec::with_capacity(cuts);
    let mut guard = 0usize;
    while out.len() < cuts {
        let c = match init {
            InitStrategy::Uniform => rng.random_range(1..m),
            InitStrategy::Guided => {
                // Same truncated-triangular sampling as the GA.
                let (lo, peak, hi) = (0.10 * m as f64, 0.45 * m as f64, 0.95 * m as f64);
                let u: f64 = rng.random_range(0.0..1.0);
                let fc = (peak - lo) / (hi - lo);
                let x = if u < fc {
                    lo + (u * (hi - lo) * (peak - lo)).sqrt()
                } else {
                    hi - ((1.0 - u) * (hi - lo) * (hi - peak)).sqrt()
                };
                (x.round() as usize).clamp(1, m - 1)
            }
        };
        if !out.contains(&c) {
            out.push(c);
        }
        guard += 1;
        if guard > 64 * cuts {
            for c in 1..m {
                if out.len() < cuts && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn neighbor(graph: &Graph, state: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let m = graph.op_count();
    let mut next = state.to_vec();
    let i = rng.random_range(0..next.len());
    let span = (m / 10).max(1) as i64;
    let step = rng.random_range(-span..=span).max(-(next[i] as i64 - 1));
    let mut moved = (next[i] as i64 + step).clamp(1, (m - 1) as i64) as usize;
    // Resolve collisions by walking to the nearest free slot.
    let mut guard = 0;
    while next.iter().enumerate().any(|(j, &c)| j != i && c == moved) {
        moved = (moved % (m - 1)) + 1;
        guard += 1;
        if guard > m {
            break;
        }
    }
    next[i] = moved;
    next.sort_unstable();
    next
}

/// Run simulated annealing on `graph`.
///
/// # Panics
/// Panics if `cfg.blocks < 2` or the model is smaller than the block
/// count.
pub fn anneal(graph: &Graph, dev: &DeviceConfig, cfg: &AnnealConfig) -> AnnealOutcome {
    assert!(
        cfg.blocks >= 2,
        "splitting into {} blocks is a no-op",
        cfg.blocks
    );
    assert!(graph.op_count() > cfg.blocks);
    assert!(cfg.iterations > 0);
    assert!((0.0..1.0).contains(&cfg.cooling) || cfg.cooling == 1.0);

    let table = gpu_sim::CostTable::build(graph, dev);
    let cache = ProfileCache::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cuts = cfg.blocks - 1;

    let eval = |state: &[usize]| {
        let spec = SplitSpec::new(graph, state.to_vec()).expect("valid state");
        let p = cache.profile_on(&table, &spec);
        let f = fitness(&p);
        (spec, p, f)
    };

    let mut current = sample_state(graph, cuts, cfg.init, &mut rng);
    let (mut best_spec, mut best_profile, mut best_f) = eval(&current);
    let mut current_f = best_f;
    let mut temp = cfg.t0;

    for _ in 0..cfg.iterations {
        let cand = neighbor(graph, &current, &mut rng);
        let (spec, profile, f) = eval(&cand);
        let accept = f > current_f || {
            let p = ((f - current_f) / temp.max(1e-12)).exp();
            rng.random_range(0.0..1.0) < p
        };
        if accept {
            current = cand;
            current_f = f;
            if f > best_f {
                best_f = f;
                best_spec = spec;
                best_profile = profile;
            }
        }
        temp *= cfg.cooling;
    }

    AnnealOutcome {
        best: best_spec,
        best_profile,
        best_fitness: best_f,
        candidates_profiled: cache.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("sa-cnn", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let mut t = b.conv(&x, 16, 3, 1, 1);
        for i in 0..12 {
            let c = b.conv(&t, 16 + 8 * (i / 4), 3, if i % 5 == 4 { 2 } else { 1 }, 1);
            t = b.relu(&c);
        }
        b.finish()
    }

    #[test]
    fn anneal_returns_valid_split() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let out = anneal(&g, &dev, &AnnealConfig::new(3));
        assert_eq!(out.best.block_count(), 3);
        assert!(out.best_fitness.is_finite());
        assert!(out.candidates_profiled > 0);
    }

    #[test]
    fn anneal_deterministic_per_seed() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let a = anneal(&g, &dev, &AnnealConfig::new(2).with_seed(5));
        let b = anneal(&g, &dev, &AnnealConfig::new(2).with_seed(5));
        assert_eq!(a.best.cuts(), b.best.cuts());
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn anneal_near_bruteforce_on_single_cut() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let out = anneal(&g, &dev, &AnnealConfig::new(2));
        let brute = (1..g.op_count())
            .map(|c| {
                let spec = SplitSpec::new(&g, vec![c]).unwrap();
                fitness(&profiler::profile_split(&g, &spec, &dev))
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            brute - out.best_fitness < 5e-3,
            "SA {} vs brute {brute}",
            out.best_fitness
        );
    }

    #[test]
    fn best_never_worse_than_first_sample() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut cfg = AnnealConfig::new(3);
        cfg.iterations = 50;
        let out = anneal(&g, &dev, &cfg);
        // Re-derive the initial state's fitness: by construction the best
        // is at least as good.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let init = sample_state(&g, 2, cfg.init, &mut rng);
        let spec = SplitSpec::new(&g, init).unwrap();
        let f0 = fitness(&profiler::profile_split(&g, &spec, &dev));
        assert!(out.best_fitness >= f0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "no-op")]
    fn rejects_single_block() {
        anneal(&cnn(), &DeviceConfig::default(), &AnnealConfig::new(1));
    }
}
