//! Property tests for graph/split invariants.

use dnn_graph::{Graph, GraphBuilder, OpKind, Operator, SplitSpec, TensorShape};
use proptest::prelude::*;

/// Build a random layered DAG: a chain with occasional skip connections,
/// mimicking residual networks. Always valid.
fn random_graph(ops: usize, skips: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new("prop");
    for i in 0..ops {
        let mut ins: Vec<usize> = if i == 0 { vec![] } else { vec![i - 1] };
        for &(from, to) in skips {
            if to == i && from < i && !ins.contains(&from) {
                ins.push(from);
            }
        }
        g.push(
            Operator::new(
                OpKind::Conv2d,
                format!("op{i}"),
                (i as u64 + 1) * 100,
                TensorShape::new([(ops - i) as u64 * 16]),
            ),
            &ins,
        )
        .unwrap();
    }
    g
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..60).prop_flat_map(|ops| {
        proptest::collection::vec((0usize..ops, 0usize..ops), 0..6).prop_map(move |raw| {
            let skips: Vec<(usize, usize)> = raw.into_iter().filter(|&(a, b)| a + 1 < b).collect();
            random_graph(ops, &skips)
        })
    })
}

proptest! {
    #[test]
    fn validate_accepts_generated(g in graph_strategy()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn all_boundary_bytes_matches_scalar(g in graph_strategy()) {
        let all = g.all_boundary_bytes();
        for (c, &bytes) in all.iter().enumerate().take(g.op_count() + 1) {
            prop_assert_eq!(bytes, g.boundary_bytes(c));
        }
    }

    #[test]
    fn boundary_is_zero_only_at_ends_for_chains(ops in 3usize..40) {
        let g = random_graph(ops, &[]);
        let all = g.all_boundary_bytes();
        prop_assert_eq!(all[0], 0);
        prop_assert_eq!(all[ops], 0);
        for &bytes in &all[1..ops] {
            prop_assert!(bytes > 0);
        }
    }

    /// Blocks from any valid SplitSpec exactly partition the operator range.
    #[test]
    fn blocks_partition(g in graph_strategy(), raw_cuts in proptest::collection::vec(1usize..1000, 0..8)) {
        let spec = SplitSpec::repaired(&g, raw_cuts);
        let blocks = spec.blocks(&g);
        prop_assert_eq!(blocks.len(), spec.block_count());
        // Coverage: consecutive, starting at 0, ending at op_count.
        prop_assert_eq!(blocks[0].start, 0);
        prop_assert_eq!(blocks.last().unwrap().end, g.op_count());
        for w in blocks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // No block empty, flops partition the total.
        let mut flops = 0u64;
        for b in &blocks {
            prop_assert!(!b.is_empty());
            flops += b.flops(&g);
        }
        prop_assert_eq!(flops, g.total_flops());
    }

    /// Repair is idempotent: repairing an already-valid cut set is identity.
    #[test]
    fn repair_idempotent(g in graph_strategy(), raw in proptest::collection::vec(1usize..1000, 0..8)) {
        let once = SplitSpec::repaired(&g, raw);
        let twice = SplitSpec::repaired(&g, once.cuts().to_vec());
        prop_assert_eq!(once, twice);
    }

    /// Skip connections can only increase a boundary relative to the chain
    /// version of the same graph.
    #[test]
    fn skips_never_shrink_boundaries(
        (ops, from, to) in (4usize..40).prop_flat_map(|ops| {
            (0usize..ops - 2).prop_flat_map(move |from| {
                (from + 2..ops).prop_map(move |to| (ops, from, to))
            })
        }),
    ) {
        let chain = random_graph(ops, &[]);
        let skipped = random_graph(ops, &[(from, to)]);
        let a = chain.all_boundary_bytes();
        let b = skipped.all_boundary_bytes();
        for c in 0..=ops {
            prop_assert!(b[c] >= a[c], "cut {c}: skip {from}->{to} shrank boundary");
        }
    }
}

#[test]
fn builder_graphs_validate() {
    // A small inception-ish module exercised end to end.
    let mut b = GraphBuilder::new("mini-inception", TensorShape::chw(16, 28, 28));
    let x = b.source();
    let b1 = b.conv(&x, 8, 1, 1, 0);
    let b3a = b.conv(&x, 12, 1, 1, 0);
    let b3b = b.conv(&b3a, 16, 3, 1, 1);
    let p = b.maxpool(&x, 3, 1, 1);
    let pp = b.conv(&p, 8, 1, 1, 0);
    let cat = b.concat(&[&b1, &b3b, &pp]);
    let _ = b.relu(&cat);
    let g = b.finish();
    assert_eq!(g.op_count(), 7);
    assert!(g.validate().is_ok());
}
