//! Serialization round trips: a graph shipped as JSON (the stand-in for
//! .onnx files in the paper's workflow) must reproduce identical splitting
//! behaviour.

use dnn_graph::{Graph, GraphBuilder, SplitSpec, TensorShape};

fn residual_cnn() -> Graph {
    let mut b = GraphBuilder::new("serde-cnn", TensorShape::chw(3, 32, 32));
    let x = b.source();
    let c0 = b.conv(&x, 16, 3, 1, 1);
    let mut t = b.relu(&c0);
    for _ in 0..3 {
        let c1 = b.conv(&t, 16, 3, 1, 1);
        let r1 = b.relu(&c1);
        let c2 = b.conv(&r1, 16, 3, 1, 1);
        let s = b.add(&c2, &t);
        t = b.relu(&s);
    }
    let g = b.gavgpool(&t);
    let f = b.flatten(&g);
    let _ = b.dense(&f, 10);
    b.finish()
}

#[test]
fn graph_json_round_trip_preserves_everything() {
    let g = residual_cnn();
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();

    assert_eq!(back.name, g.name);
    assert_eq!(back.op_count(), g.op_count());
    assert_eq!(back.total_flops(), g.total_flops());
    assert_eq!(back.total_weight_bytes(), g.total_weight_bytes());
    assert!(back.validate().is_ok());
    // The quantities splitting depends on survive exactly.
    assert_eq!(back.all_boundary_bytes(), g.all_boundary_bytes());
    for v in 0..g.op_count() {
        assert_eq!(back.inputs_of(v), g.inputs_of(v));
        assert_eq!(back.op(v), g.op(v));
        assert_eq!(back.last_consumer(v), g.last_consumer(v));
    }
}

#[test]
fn time_scale_survives_round_trip() {
    let mut g = residual_cnn();
    g.set_time_scale(0.37);
    let back: Graph = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
    assert!((back.time_scale() - 0.37).abs() < 1e-15);
}

#[test]
fn legacy_json_without_time_scale_defaults_to_one() {
    // Graphs serialized before the calibration field existed must load.
    let g = residual_cnn();
    let mut value: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
    value.as_object_mut().unwrap().remove("time_scale");
    let back: Graph = serde_json::from_value(value).unwrap();
    assert_eq!(back.time_scale(), 1.0);
}

#[test]
fn split_specs_round_trip_with_graph() {
    let g = residual_cnn();
    let spec = SplitSpec::new(&g, vec![5, 11]).unwrap();
    let json = serde_json::to_string(&spec).unwrap();
    let back: SplitSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.blocks(&g), spec.blocks(&g));
}
