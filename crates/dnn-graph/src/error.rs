//! Error types for graph construction and splitting.

use std::fmt;

/// Errors raised while building, validating, or splitting a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node id that does not exist.
    UnknownNode(usize),
    /// The graph contains a cycle (models must be DAGs, paper §2.2).
    Cycle,
    /// The graph has no operators.
    Empty,
    /// A node other than the designated output has no consumers.
    DanglingOutput(usize),
    /// A cut index is outside the valid range `1..op_count`.
    CutOutOfRange {
        /// The offending cut position.
        cut: usize,
        /// The model's operator count.
        op_count: usize,
    },
    /// Cut indices must be strictly increasing.
    CutsNotSorted,
    /// The requested number of blocks exceeds the operator count.
    TooManyBlocks {
        /// Requested block count.
        blocks: usize,
        /// The model's operator count.
        op_count: usize,
    },
    /// An edge points backwards in the linear order (internal invariant).
    NonTopological {
        /// Producer node id.
        from: usize,
        /// Consumer node id.
        to: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "edge references unknown node {id}"),
            GraphError::Cycle => write!(f, "graph contains a cycle; models must be DAGs"),
            GraphError::Empty => write!(f, "graph has no operators"),
            GraphError::DanglingOutput(id) => {
                write!(f, "node {id} has no consumers but is not the graph output")
            }
            GraphError::CutOutOfRange { cut, op_count } => {
                write!(f, "cut {cut} out of range 1..{op_count}")
            }
            GraphError::CutsNotSorted => write!(f, "cut indices must be strictly increasing"),
            GraphError::TooManyBlocks { blocks, op_count } => {
                write!(f, "cannot split {op_count} operators into {blocks} blocks")
            }
            GraphError::NonTopological { from, to } => {
                write!(f, "edge {from}->{to} violates topological order")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            GraphError::UnknownNode(3).to_string(),
            GraphError::Cycle.to_string(),
            GraphError::Empty.to_string(),
            GraphError::CutOutOfRange {
                cut: 9,
                op_count: 4,
            }
            .to_string(),
            GraphError::CutsNotSorted.to_string(),
            GraphError::TooManyBlocks {
                blocks: 10,
                op_count: 2,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(GraphError::UnknownNode(3).to_string().contains('3'));
        assert!(GraphError::CutOutOfRange {
            cut: 9,
            op_count: 4
        }
        .to_string()
        .contains('9'));
    }
}
