#![warn(missing_docs)]
//! # dnn-graph — operator-graph intermediate representation
//!
//! Substrate crate for the SPLIT reproduction. A deep-learning model is a
//! directed acyclic graph (DAG) of operators; SPLIT splits models into
//! *blocks* — contiguous ranges of the topologically-linearized operator
//! sequence — at operator boundaries (paper §2.2).
//!
//! This crate provides:
//!
//! * [`tensor`] — tensor shapes, dtypes, and byte accounting,
//! * [`op`] — operator kinds and per-operator work accounting (FLOPs,
//!   activation bytes, weight bytes),
//! * [`graph`] — the DAG itself with validation and topological
//!   linearization,
//! * [`block`] — split specifications ([`block::SplitSpec`]) and the blocks
//!   they induce, including the inter-block *boundary transfer volume* that
//!   drives the paper's splitting-overhead observation (Figure 2a),
//! * [`builder`] — an ergonomic layer-by-layer graph builder used by the
//!   `model-zoo` crate.
//!
//! The crate is deliberately free of any timing model: execution time is the
//! business of the `gpu-sim` crate, which consumes the FLOP/byte accounting
//! recorded here.

pub mod block;
pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod op;
pub mod stats;
pub mod tensor;

pub use block::{Block, SplitSpec};
pub use builder::{GraphBuilder, Tap};
pub use dot::to_dot;
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use op::{OpKind, Operator};
pub use stats::{count_kind, graph_stats, GraphStats};
pub use tensor::{DType, TensorShape};
