//! Tensor shapes and element types.
//!
//! The reproduction only needs *byte accounting*: how large the activation
//! crossing a potential cut point is, and how much data an operator reads and
//! writes. Shapes are kept symbolic (no buffers are ever allocated).

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
///
/// Edge inference typically runs fp16 or fp32; the paper's Jetson Nano
/// deployment uses fp32 ONNX models, which is our default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE float (default for ONNX zoo models).
    #[default]
    F32,
    /// 16-bit IEEE float.
    F16,
    /// 8-bit signed integer (quantized deployments).
    I8,
    /// 32-bit signed integer (index tensors, e.g. token ids).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }
}

/// A symbolic tensor shape: a list of dimension extents plus a dtype.
///
/// Dimension order follows the NCHW convention for images
/// (`[batch, channels, height, width]`) and `[batch, seq, hidden]` for
/// sequence models, but nothing in the crate depends on the convention —
/// only the element count matters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Dimension extents; empty means a scalar.
    pub dims: Vec<u64>,
    /// Element type.
    pub dtype: DType,
}

impl TensorShape {
    /// Create an fp32 tensor shape from dimension extents.
    pub fn new(dims: impl Into<Vec<u64>>) -> Self {
        Self {
            dims: dims.into(),
            dtype: DType::F32,
        }
    }

    /// Create a tensor shape with an explicit dtype.
    pub fn with_dtype(dims: impl Into<Vec<u64>>, dtype: DType) -> Self {
        Self {
            dims: dims.into(),
            dtype,
        }
    }

    /// Convenience constructor for NCHW image tensors with batch 1.
    pub fn chw(c: u64, h: u64, w: u64) -> Self {
        Self::new([1, c, h, w])
    }

    /// Convenience constructor for `[batch=1, seq, hidden]` sequence tensors.
    pub fn seq(seq: u64, hidden: u64) -> Self {
        Self::new([1, seq, hidden])
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    #[inline]
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Total size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.elements() * self.dtype.size_bytes()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

impl Default for TensorShape {
    fn default() -> Self {
        Self {
            dims: vec![],
            dtype: DType::F32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn scalar_has_one_element() {
        let s = TensorShape::default();
        assert_eq!(s.elements(), 1);
        assert_eq!(s.bytes(), 4);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn chw_accounting() {
        // A 224x224 RGB image in fp32: 1*3*224*224*4 bytes.
        let s = TensorShape::chw(3, 224, 224);
        assert_eq!(s.elements(), 3 * 224 * 224);
        assert_eq!(s.bytes(), 3 * 224 * 224 * 4);
    }

    #[test]
    fn seq_accounting() {
        let s = TensorShape::seq(64, 768);
        assert_eq!(s.elements(), 64 * 768);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn dtype_changes_bytes_not_elements() {
        let f32 = TensorShape::chw(16, 8, 8);
        let f16 = TensorShape::with_dtype(f32.dims.clone(), DType::F16);
        assert_eq!(f32.elements(), f16.elements());
        assert_eq!(f32.bytes(), 2 * f16.bytes());
    }
}
