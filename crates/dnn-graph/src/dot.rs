//! Graphviz DOT export — for eyeballing reconstructed architectures and
//! visualizing where a split's cut points land.

use crate::block::SplitSpec;
use crate::graph::Graph;
use std::fmt::Write as _;

/// Render a graph as DOT. With a [`SplitSpec`], operators are clustered
/// into their blocks so the cut points are visible.
pub fn to_dot(graph: &Graph, split: Option<&SplitSpec>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", graph.name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=9];");

    match split {
        Some(spec) => {
            for block in spec.blocks(graph) {
                let _ = writeln!(out, "  subgraph cluster_block{} {{", block.index);
                let _ = writeln!(out, "    label=\"block {}\"; style=rounded;", block.index);
                for id in block.start..block.end {
                    let op = graph.op(id);
                    let _ = writeln!(
                        out,
                        "    n{id} [label=\"{}\\n{}\"];",
                        op.name,
                        op.kind.name()
                    );
                }
                let _ = writeln!(out, "  }}");
            }
        }
        None => {
            for (id, op) in graph.ops().iter().enumerate() {
                let _ = writeln!(out, "  n{id} [label=\"{}\\n{}\"];", op.name, op.kind.name());
            }
        }
    }

    for v in 0..graph.op_count() {
        for &u in graph.inputs_of(v) {
            let _ = writeln!(out, "  n{u} -> n{v};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::tensor::TensorShape;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("tiny", TensorShape::chw(3, 8, 8));
        let x = b.source();
        let c = b.conv(&x, 4, 3, 1, 1);
        let r = b.relu(&c);
        let c2 = b.conv(&r, 4, 3, 1, 1);
        let _ = b.add(&c2, &c);
        b.finish()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = tiny();
        let dot = to_dot(&g, None);
        for id in 0..g.op_count() {
            assert!(dot.contains(&format!("n{id} ")), "missing node {id}");
        }
        // The residual edge c -> add must be present.
        assert!(dot.contains("n0 -> n3"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn split_render_clusters_blocks() {
        let g = tiny();
        let spec = SplitSpec::new(&g, vec![2]).unwrap();
        let dot = to_dot(&g, Some(&spec));
        assert!(dot.contains("cluster_block0"));
        assert!(dot.contains("cluster_block1"));
        assert!(dot.contains("label=\"block 1\""));
    }
}
