//! Splitting a model into blocks.
//!
//! A [`SplitSpec`] is the paper's "model splitting option": `m-1` cut
//! positions dividing the linearized operator sequence into `m` blocks
//! (§3.3). Blocks are contiguous, ordered, and together cover every
//! operator exactly once — invariants enforced here and property-tested.

use crate::error::GraphError;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A split specification: strictly increasing cut positions in `1..M`.
///
/// `cuts = [c1, c2]` over an `M`-operator model yields blocks
/// `[0..c1)`, `[c1..c2)`, `[c2..M)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitSpec {
    cuts: Vec<usize>,
}

impl SplitSpec {
    /// The unsplit model (zero cuts, one block).
    pub fn unsplit() -> Self {
        Self { cuts: Vec::new() }
    }

    /// Build a spec from cut positions, validating against a graph.
    pub fn new(graph: &Graph, cuts: impl Into<Vec<usize>>) -> Result<Self, GraphError> {
        let cuts = cuts.into();
        let m = graph.op_count();
        for &c in &cuts {
            if c == 0 || c >= m {
                return Err(GraphError::CutOutOfRange {
                    cut: c,
                    op_count: m,
                });
            }
        }
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(GraphError::CutsNotSorted);
        }
        if cuts.len() + 1 > m {
            return Err(GraphError::TooManyBlocks {
                blocks: cuts.len() + 1,
                op_count: m,
            });
        }
        Ok(Self { cuts })
    }

    /// Build from possibly unsorted/duplicated positions by repairing them:
    /// sort, dedup, and clamp into range. Used by genetic-algorithm
    /// operators whose raw offspring may be invalid.
    pub fn repaired(graph: &Graph, mut cuts: Vec<usize>) -> Self {
        let m = graph.op_count();
        for c in cuts.iter_mut() {
            *c = (*c).clamp(1, m.saturating_sub(1).max(1));
        }
        cuts.sort_unstable();
        cuts.dedup();
        cuts.truncate(m.saturating_sub(1));
        Self { cuts }
    }

    /// The cut positions.
    #[inline]
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Number of blocks this spec induces (`cuts + 1`).
    #[inline]
    pub fn block_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Materialize the blocks for a graph.
    pub fn blocks(&self, graph: &Graph) -> Vec<Block> {
        let m = graph.op_count();
        let mut bounds = Vec::with_capacity(self.cuts.len() + 2);
        bounds.push(0);
        bounds.extend_from_slice(&self.cuts);
        bounds.push(m);
        bounds
            .windows(2)
            .enumerate()
            .map(|(i, w)| Block {
                index: i,
                start: w[0],
                end: w[1],
            })
            .collect()
    }
}

/// One block: the contiguous operator range `[start, end)` of a split model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// Position of this block within the split (0-based).
    pub index: usize,
    /// First operator (inclusive).
    pub start: usize,
    /// One past the last operator.
    pub end: usize,
}

impl Block {
    /// Number of operators in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the block contains no operators (never produced by a valid
    /// [`SplitSpec`], but present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Total FLOPs of the operators in this block.
    pub fn flops(&self, graph: &Graph) -> u64 {
        graph.ops()[self.start..self.end]
            .iter()
            .map(|o| o.flops)
            .sum()
    }

    /// Bytes entering the block across its leading boundary.
    pub fn input_transfer_bytes(&self, graph: &Graph) -> u64 {
        graph.boundary_bytes(self.start)
    }

    /// Bytes leaving the block across its trailing boundary.
    pub fn output_transfer_bytes(&self, graph: &Graph) -> u64 {
        graph.boundary_bytes(self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Operator};
    use crate::tensor::TensorShape;

    fn line(n: usize) -> Graph {
        let mut g = Graph::new("line");
        let mut prev: Option<usize> = None;
        for i in 0..n {
            let ins: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                g.push(
                    Operator::new(OpKind::Relu, format!("op{i}"), 10, TensorShape::new([8])),
                    &ins,
                )
                .unwrap(),
            );
        }
        g
    }

    #[test]
    fn unsplit_is_one_block() {
        let g = line(5);
        let s = SplitSpec::unsplit();
        let blocks = s.blocks(&g);
        assert_eq!(blocks.len(), 1);
        assert_eq!((blocks[0].start, blocks[0].end), (0, 5));
    }

    #[test]
    fn valid_spec_produces_partition() {
        let g = line(10);
        let s = SplitSpec::new(&g, vec![3, 7]).unwrap();
        let blocks = s.blocks(&g);
        assert_eq!(blocks.len(), 3);
        assert_eq!((blocks[0].start, blocks[0].end), (0, 3));
        assert_eq!((blocks[1].start, blocks[1].end), (3, 7));
        assert_eq!((blocks[2].start, blocks[2].end), (7, 10));
        assert_eq!(blocks.iter().map(Block::len).sum::<usize>(), 10);
    }

    #[test]
    fn rejects_out_of_range_and_unsorted() {
        let g = line(5);
        assert!(matches!(
            SplitSpec::new(&g, vec![0]),
            Err(GraphError::CutOutOfRange { cut: 0, .. })
        ));
        assert!(matches!(
            SplitSpec::new(&g, vec![5]),
            Err(GraphError::CutOutOfRange { cut: 5, .. })
        ));
        assert_eq!(
            SplitSpec::new(&g, vec![3, 2]),
            Err(GraphError::CutsNotSorted)
        );
        assert_eq!(
            SplitSpec::new(&g, vec![2, 2]),
            Err(GraphError::CutsNotSorted)
        );
    }

    #[test]
    fn repair_sorts_dedups_clamps() {
        let g = line(6);
        let s = SplitSpec::repaired(&g, vec![9, 0, 3, 3, 2]);
        // 9 clamps to 5, 0 clamps to 1.
        assert_eq!(s.cuts(), &[1, 2, 3, 5]);
        SplitSpec::new(&g, s.cuts().to_vec()).unwrap();
    }

    #[test]
    fn block_flops_partition_total() {
        let g = line(10);
        let s = SplitSpec::new(&g, vec![4]).unwrap();
        let total: u64 = s.blocks(&g).iter().map(|b| b.flops(&g)).sum();
        assert_eq!(total, g.total_flops());
    }

    #[test]
    fn boundary_transfer_consistency() {
        let g = line(10);
        let s = SplitSpec::new(&g, vec![4]).unwrap();
        let blocks = s.blocks(&g);
        // Trailing transfer of block 0 equals leading transfer of block 1.
        assert_eq!(
            blocks[0].output_transfer_bytes(&g),
            blocks[1].input_transfer_bytes(&g)
        );
        // Model input/output boundaries carry nothing.
        assert_eq!(blocks[0].input_transfer_bytes(&g), 0);
        assert_eq!(blocks[1].output_transfer_bytes(&g), 0);
    }
}
