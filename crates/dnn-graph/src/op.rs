//! Operators and their work accounting.
//!
//! An [`Operator`] records everything a timing model needs: the operator
//! kind, its FLOP count, the bytes of activation it produces, and the bytes
//! of weights it reads. FLOP counts follow the standard conventions used by
//! profilers (one multiply-accumulate = 2 FLOPs).

use crate::tensor::TensorShape;
use serde::{Deserialize, Serialize};

/// The kind of an operator, mirroring the ONNX operator set used by the
/// paper's model zoo (conv, relu, pooling, gemm, attention pieces, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution (includes pointwise 1x1).
    Conv2d,
    /// Depthwise 2-D convolution (MobileNet/ShuffleNet/EfficientNet style).
    DepthwiseConv2d,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Global average pooling.
    GlobalAvgPool,
    /// Rectified linear unit (also used for ReLU6, LeakyReLU variants).
    Relu,
    /// Sigmoid / SiLU / swish style activations.
    Sigmoid,
    /// GELU activation (transformers).
    Gelu,
    /// Batch normalization (inference mode: scale+shift).
    BatchNorm,
    /// Layer normalization.
    LayerNorm,
    /// Elementwise addition (residual connections).
    Add,
    /// Elementwise multiplication (squeeze-excite gates).
    Mul,
    /// Channel concatenation (inception / dense blocks / YOLO passthrough).
    Concat,
    /// Channel shuffle (ShuffleNet).
    ChannelShuffle,
    /// Fully-connected layer / GEMM.
    Dense,
    /// General matrix multiply (attention score/value products).
    MatMul,
    /// Softmax.
    Softmax,
    /// Token + position embedding lookup.
    Embedding,
    /// Shape-only ops: reshape, flatten, transpose, squeeze.
    Reshape,
    /// Nearest-neighbour upsampling / space-to-depth (YOLO reorg).
    Resize,
    /// Dropout is identity at inference but appears in graphs.
    Identity,
}

impl OpKind {
    /// Human-readable lowercase name (matches ONNX-style naming loosely).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Conv2d => "conv2d",
            OpKind::DepthwiseConv2d => "dwconv2d",
            OpKind::MaxPool => "maxpool",
            OpKind::AvgPool => "avgpool",
            OpKind::GlobalAvgPool => "gavgpool",
            OpKind::Relu => "relu",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Gelu => "gelu",
            OpKind::BatchNorm => "batchnorm",
            OpKind::LayerNorm => "layernorm",
            OpKind::Add => "add",
            OpKind::Mul => "mul",
            OpKind::Concat => "concat",
            OpKind::ChannelShuffle => "shuffle",
            OpKind::Dense => "dense",
            OpKind::MatMul => "matmul",
            OpKind::Softmax => "softmax",
            OpKind::Embedding => "embedding",
            OpKind::Reshape => "reshape",
            OpKind::Resize => "resize",
            OpKind::Identity => "identity",
        }
    }

    /// Whether the operator does meaningful arithmetic (vs. pure data
    /// movement). Used by tests and by the kernel-cost model's floor.
    pub fn is_compute(self) -> bool {
        !matches!(self, OpKind::Reshape | OpKind::Identity)
    }
}

/// One operator (node) in a model graph.
///
/// All work accounting is precomputed by the model builders so that timing
/// queries are pure arithmetic — no shape inference happens at scheduling
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Operator kind.
    pub kind: OpKind,
    /// Layer name, e.g. `"conv2_3/dw"`.
    pub name: String,
    /// Floating-point operations performed (2 × MACs for conv/gemm).
    pub flops: u64,
    /// Shape (and hence bytes) of the activation this operator produces.
    pub output: TensorShape,
    /// Bytes of weights/parameters this operator reads.
    pub weight_bytes: u64,
}

impl Operator {
    /// Create an operator with explicit accounting.
    pub fn new(kind: OpKind, name: impl Into<String>, flops: u64, output: TensorShape) -> Self {
        Self {
            kind,
            name: name.into(),
            flops,
            output,
            weight_bytes: 0,
        }
    }

    /// Builder-style: attach weight bytes.
    pub fn with_weights(mut self, weight_bytes: u64) -> Self {
        self.weight_bytes = weight_bytes;
        self
    }

    /// Bytes of activation output.
    #[inline]
    pub fn output_bytes(&self) -> u64 {
        self.output.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct_enough() {
        assert_eq!(OpKind::Conv2d.name(), "conv2d");
        assert_eq!(OpKind::DepthwiseConv2d.name(), "dwconv2d");
        assert_ne!(OpKind::MaxPool.name(), OpKind::AvgPool.name());
    }

    #[test]
    fn shape_only_ops_are_not_compute() {
        assert!(!OpKind::Reshape.is_compute());
        assert!(!OpKind::Identity.is_compute());
        assert!(OpKind::Conv2d.is_compute());
        assert!(OpKind::Softmax.is_compute());
    }

    #[test]
    fn operator_accounting_round_trip() {
        let op = Operator::new(
            OpKind::Conv2d,
            "conv1",
            1_000_000,
            TensorShape::chw(64, 56, 56),
        )
        .with_weights(9408 * 4);
        assert_eq!(op.output_bytes(), 64 * 56 * 56 * 4);
        assert_eq!(op.weight_bytes, 9408 * 4);
        assert_eq!(op.flops, 1_000_000);
    }
}
