//! The model graph: a DAG of operators stored in topological order.
//!
//! SPLIT linearizes a model into its topological operator sequence and cuts
//! it between positions. A *cut at position `c`* separates operators
//! `0..c` from `c..M`. Because models are DAGs (not chains), a tensor
//! produced before the cut may be consumed after it — e.g. a ResNet skip
//! connection — and every such live tensor must be transferred across the
//! block boundary. [`Graph::boundary_bytes`] accounts for exactly that, and
//! is what makes early cuts expensive (paper Figure 2a).

use crate::error::GraphError;
use crate::op::Operator;
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Graph`]. Node ids are dense and assigned in
/// insertion order, which the builder guarantees to be topological.
pub type NodeId = usize;

/// A deep-learning model graph.
///
/// Invariants (checked by [`Graph::validate`]):
/// * node ids are topologically ordered: every edge satisfies `from < to`;
/// * the graph is non-empty;
/// * exactly the last node may have no consumers (it is the model output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Model name, e.g. `"resnet50"`.
    pub name: String,
    ops: Vec<Operator>,
    /// `inputs[v]` = producers feeding node `v`.
    inputs: Vec<Vec<NodeId>>,
    /// `last_consumer[u]` = largest node id consuming `u`'s output
    /// (`u` itself if it has no consumers).
    last_consumer: Vec<NodeId>,
    /// Calibration multiplier applied to operator execution times by the
    /// timing model (not to boundary transfers). Lets a synthetic
    /// architecture match a measured end-to-end latency (paper Table 1)
    /// without changing its shape accounting. Defaults to 1.
    #[serde(default = "default_time_scale")]
    time_scale: f64,
}

fn default_time_scale() -> f64 {
    1.0
}

impl Graph {
    /// Create an empty graph. Use [`crate::builder::GraphBuilder`] for
    /// ergonomic construction.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            inputs: Vec::new(),
            last_consumer: Vec::new(),
            time_scale: 1.0,
        }
    }

    /// The calibration multiplier for operator times (default 1).
    #[inline]
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Set the calibration multiplier (must be positive).
    pub fn set_time_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "time scale must be positive, got {scale}"
        );
        self.time_scale = scale;
    }

    /// Append an operator whose inputs are the given earlier nodes.
    ///
    /// Returns the new node's id. Fails if any input id is not an existing
    /// earlier node (which would break topological order).
    pub fn push(&mut self, op: Operator, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        let id = self.ops.len();
        for &u in inputs {
            if u >= id {
                return Err(GraphError::UnknownNode(u));
            }
        }
        self.ops.push(op);
        self.inputs.push(inputs.to_vec());
        self.last_consumer.push(id);
        for &u in inputs {
            self.last_consumer[u] = self.last_consumer[u].max(id);
        }
        Ok(id)
    }

    /// Number of operators.
    #[inline]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The operators in topological order.
    #[inline]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// One operator by id.
    #[inline]
    pub fn op(&self, id: NodeId) -> &Operator {
        &self.ops[id]
    }

    /// Producers feeding node `v`.
    #[inline]
    pub fn inputs_of(&self, v: NodeId) -> &[NodeId] {
        &self.inputs[v]
    }

    /// Largest node id that consumes `u`'s output.
    #[inline]
    pub fn last_consumer(&self, u: NodeId) -> NodeId {
        self.last_consumer[u]
    }

    /// Total FLOPs across all operators.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Total parameter bytes across all operators.
    pub fn total_weight_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.weight_bytes).sum()
    }

    /// Check the structural invariants.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.ops.is_empty() {
            return Err(GraphError::Empty);
        }
        for (v, ins) in self.inputs.iter().enumerate() {
            for &u in ins {
                if u >= self.ops.len() {
                    return Err(GraphError::UnknownNode(u));
                }
                if u >= v {
                    return Err(GraphError::NonTopological { from: u, to: v });
                }
            }
        }
        // Every node except the final output must feed someone.
        let last = self.ops.len() - 1;
        for u in 0..last {
            if self.last_consumer[u] == u {
                return Err(GraphError::DanglingOutput(u));
            }
        }
        Ok(())
    }

    /// Bytes that must cross a cut placed at position `c` (between operators
    /// `c-1` and `c`): the sum of output sizes of all tensors produced
    /// before the cut and still consumed at or after it. Each tensor is
    /// counted once regardless of how many post-cut consumers it has.
    ///
    /// `c` must be in `1..op_count`; `boundary_bytes(0)` and
    /// `boundary_bytes(op_count)` are defined as the model input/output
    /// handled outside splitting and return 0.
    pub fn boundary_bytes(&self, c: usize) -> u64 {
        if c == 0 || c >= self.ops.len() {
            return 0;
        }
        self.ops
            .iter()
            .enumerate()
            .take(c)
            .filter(|&(u, _)| self.last_consumer[u] >= c)
            .map(|(_, op)| op.output_bytes())
            .sum()
    }

    /// All boundary transfer volumes at once: `result[c]` =
    /// [`Graph::boundary_bytes`]`(c)` for `c in 0..=op_count`. Computed in
    /// `O(M)` with a difference array; used by the Figure 2 sweep where every
    /// cut position is queried.
    pub fn all_boundary_bytes(&self) -> Vec<u64> {
        let m = self.ops.len();
        let mut diff = vec![0i128; m + 2];
        for (u, op) in self.ops.iter().enumerate() {
            let last = self.last_consumer[u];
            if last > u {
                // Tensor u is live across cuts c in (u, last].
                diff[u + 1] += op.output_bytes() as i128;
                diff[last + 1] -= op.output_bytes() as i128;
            }
        }
        let mut out = vec![0u64; m + 1];
        let mut acc: i128 = 0;
        for (c, slot) in out.iter_mut().enumerate() {
            acc += diff[c];
            *slot = if c == 0 || c == m { 0 } else { acc as u64 };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Operator};
    use crate::tensor::TensorShape;

    fn op(bytes_elems: u64) -> Operator {
        Operator::new(OpKind::Conv2d, "op", 1000, TensorShape::new([bytes_elems]))
    }

    /// chain: 0 -> 1 -> 2 -> 3
    fn chain() -> Graph {
        let mut g = Graph::new("chain");
        let a = g.push(op(10), &[]).unwrap();
        let b = g.push(op(20), &[a]).unwrap();
        let c = g.push(op(30), &[b]).unwrap();
        g.push(op(40), &[c]).unwrap();
        g
    }

    /// diamond with a skip: 0 -> 1 -> 2 -> 3(add of 1 and 2) -> 4
    fn skip() -> Graph {
        let mut g = Graph::new("skip");
        let a = g.push(op(10), &[]).unwrap();
        let b = g.push(op(20), &[a]).unwrap();
        let c = g.push(op(30), &[b]).unwrap();
        let d = g.push(op(40), &[b, c]).unwrap();
        g.push(op(50), &[d]).unwrap();
        g
    }

    #[test]
    fn push_rejects_forward_reference() {
        let mut g = Graph::new("bad");
        assert_eq!(g.push(op(1), &[0]), Err(GraphError::UnknownNode(0)));
    }

    #[test]
    fn validate_accepts_chain_and_skip() {
        chain().validate().unwrap();
        skip().validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Graph::new("e").validate(), Err(GraphError::Empty));
    }

    #[test]
    fn validate_rejects_dangling() {
        let mut g = Graph::new("d");
        let a = g.push(op(1), &[]).unwrap();
        let _orphan = g.push(op(2), &[a]).unwrap();
        let _also_from_a = g.push(op(3), &[a]).unwrap();
        // node 1 has no consumers and is not the output
        assert_eq!(g.validate(), Err(GraphError::DanglingOutput(1)));
    }

    #[test]
    fn chain_boundary_is_single_edge() {
        let g = chain();
        // Cut between op c-1 and c carries exactly op c-1's output (fp32).
        assert_eq!(g.boundary_bytes(1), 10 * 4);
        assert_eq!(g.boundary_bytes(2), 20 * 4);
        assert_eq!(g.boundary_bytes(3), 30 * 4);
        assert_eq!(g.boundary_bytes(0), 0);
        assert_eq!(g.boundary_bytes(4), 0);
    }

    #[test]
    fn skip_connection_inflates_boundary() {
        let g = skip();
        // Cut at position 3 crosses both op1's output (consumed by op3) and
        // op2's output.
        assert_eq!(g.boundary_bytes(3), (20 + 30) * 4);
        // Cut at position 2 only carries op1's output (op0's last consumer is op1).
        assert_eq!(g.boundary_bytes(2), 20 * 4);
    }

    #[test]
    fn all_boundary_bytes_matches_pointwise() {
        for g in [chain(), skip()] {
            let all = g.all_boundary_bytes();
            assert_eq!(all.len(), g.op_count() + 1);
            for (c, &v) in all.iter().enumerate() {
                assert_eq!(v, g.boundary_bytes(c), "cut {c} of {}", g.name);
            }
        }
    }

    #[test]
    fn totals() {
        let g = chain();
        assert_eq!(g.total_flops(), 4000);
        assert_eq!(g.total_weight_bytes(), 0);
    }
}
