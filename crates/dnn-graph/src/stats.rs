//! Graph statistics: the quantities the paper's §2.4 observations are
//! built on, computed per model.
//!
//! * the **activation-volume curve** (output bytes per operator position)
//!   — its downward slope is why early cuts are expensive;
//! * the **operator-kind histogram** — what the model spends its nodes on;
//! * FLOP and parameter distributions along the depth.

use crate::graph::Graph;
use crate::op::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics of one model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Model name.
    pub model: String,
    /// Operator count.
    pub op_count: usize,
    /// Total FLOPs.
    pub total_flops: u64,
    /// Total parameter bytes.
    pub total_weight_bytes: u64,
    /// Operators per kind (sorted by kind name for stable output).
    pub kind_histogram: BTreeMap<String, usize>,
    /// Output bytes per operator position.
    pub activation_curve: Vec<u64>,
    /// Largest single activation, bytes.
    pub peak_activation_bytes: u64,
    /// Position (fraction of op index) where the cumulative FLOPs reach
    /// half the total — before 0.5 means a front-heavy model like VGG.
    pub flops_midpoint_frac: f64,
}

/// Compute statistics for a graph.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let mut kind_histogram: BTreeMap<String, usize> = BTreeMap::new();
    let mut activation_curve = Vec::with_capacity(graph.op_count());
    let mut peak = 0u64;
    for op in graph.ops() {
        *kind_histogram
            .entry(op.kind.name().to_string())
            .or_insert(0) += 1;
        let bytes = op.output_bytes();
        activation_curve.push(bytes);
        peak = peak.max(bytes);
    }

    let total_flops = graph.total_flops();
    let mut acc = 0u64;
    let mut mid_idx = graph.op_count().saturating_sub(1);
    for (i, op) in graph.ops().iter().enumerate() {
        acc += op.flops;
        if acc * 2 >= total_flops {
            mid_idx = i;
            break;
        }
    }

    GraphStats {
        model: graph.name.clone(),
        op_count: graph.op_count(),
        total_flops,
        total_weight_bytes: graph.total_weight_bytes(),
        kind_histogram,
        activation_curve,
        peak_activation_bytes: peak,
        flops_midpoint_frac: if graph.op_count() == 0 {
            0.0
        } else {
            mid_idx as f64 / graph.op_count() as f64
        },
    }
}

/// Count of operators of one kind.
pub fn count_kind(graph: &Graph, kind: OpKind) -> usize {
    graph.ops().iter().filter(|o| o.kind == kind).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::tensor::TensorShape;

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("stat-cnn", TensorShape::chw(3, 32, 32));
        let x = b.source();
        let c1 = b.conv(&x, 16, 3, 1, 1);
        let r1 = b.relu(&c1);
        let p = b.maxpool(&r1, 2, 2, 0);
        let c2 = b.conv(&p, 32, 3, 1, 1);
        let r2 = b.relu(&c2);
        let g = b.gavgpool(&r2);
        let f = b.flatten(&g);
        let _ = b.dense(&f, 10);
        b.finish()
    }

    #[test]
    fn histogram_counts_kinds() {
        let s = graph_stats(&cnn());
        assert_eq!(s.kind_histogram["conv2d"], 2);
        assert_eq!(s.kind_histogram["relu"], 2);
        assert_eq!(s.kind_histogram["dense"], 1);
        assert_eq!(s.kind_histogram.values().sum::<usize>(), s.op_count);
    }

    #[test]
    fn activation_curve_matches_ops() {
        let g = cnn();
        let s = graph_stats(&g);
        assert_eq!(s.activation_curve.len(), g.op_count());
        assert_eq!(s.activation_curve[0], g.op(0).output_bytes());
        assert_eq!(
            s.peak_activation_bytes,
            *s.activation_curve.iter().max().unwrap()
        );
    }

    #[test]
    fn cnn_activation_shrinks_overall() {
        let s = graph_stats(&cnn());
        assert!(s.activation_curve[0] > *s.activation_curve.last().unwrap());
    }

    #[test]
    fn midpoint_fraction_in_unit_range() {
        let s = graph_stats(&cnn());
        assert!((0.0..=1.0).contains(&s.flops_midpoint_frac));
    }

    #[test]
    fn count_kind_works() {
        let g = cnn();
        assert_eq!(count_kind(&g, OpKind::Conv2d), 2);
        assert_eq!(count_kind(&g, OpKind::Softmax), 0);
    }
}
