//! Layer-by-layer graph construction with automatic work accounting.
//!
//! [`GraphBuilder`] provides the usual CNN/transformer layer vocabulary and
//! computes output shapes, FLOP counts (2 FLOPs per multiply-accumulate),
//! and weight sizes, so model-zoo builders read like architecture
//! descriptions. Branching (inception modules, residual blocks) works by
//! holding on to [`Tap`]s.

use crate::graph::{Graph, NodeId};
use crate::op::{OpKind, Operator};
use crate::tensor::TensorShape;

/// A handle to an intermediate activation: the producing node (or the model
/// input when `node` is `None`) plus its shape.
#[derive(Debug, Clone)]
pub struct Tap {
    /// Producing node, `None` for the model input.
    pub node: Option<NodeId>,
    /// Activation shape at this point.
    pub shape: TensorShape,
}

impl Tap {
    fn ids(&self) -> Vec<NodeId> {
        self.node.into_iter().collect()
    }
}

/// Incremental builder over a [`Graph`].
pub struct GraphBuilder {
    graph: Graph,
    input: TensorShape,
    counter: usize,
}

impl GraphBuilder {
    /// Start a model with the given name and input shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self {
            graph: Graph::new(name),
            input,
            counter: 0,
        }
    }

    /// The model input tap.
    pub fn source(&self) -> Tap {
        Tap {
            node: None,
            shape: self.input.clone(),
        }
    }

    /// Finish and validate.
    pub fn finish(self) -> Graph {
        self.graph
            .validate()
            .expect("builder produced invalid graph");
        self.graph
    }

    /// Finish without validation (for tests that build deliberately odd
    /// graphs).
    pub fn finish_unchecked(self) -> Graph {
        self.graph
    }

    /// Current operator count.
    pub fn op_count(&self) -> usize {
        self.graph.op_count()
    }

    fn next_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// Escape hatch: push a fully-specified operator.
    pub fn raw(
        &mut self,
        kind: OpKind,
        name: impl Into<String>,
        flops: u64,
        out: TensorShape,
        weight_bytes: u64,
        inputs: &[&Tap],
    ) -> Tap {
        let ids: Vec<NodeId> = inputs.iter().flat_map(|t| t.ids()).collect();
        let op = Operator::new(kind, name, flops, out.clone()).with_weights(weight_bytes);
        let id = self
            .graph
            .push(op, &ids)
            .expect("raw op with invalid inputs");
        Tap {
            node: Some(id),
            shape: out,
        }
    }

    fn chw(shape: &TensorShape) -> (u64, u64, u64) {
        assert_eq!(
            shape.rank(),
            4,
            "expected NCHW tensor, got {:?}",
            shape.dims
        );
        (shape.dims[1], shape.dims[2], shape.dims[3])
    }

    fn pooled_dim(d: u64, k: u64, stride: u64, pad: u64) -> u64 {
        (d + 2 * pad - k) / stride + 1
    }

    /// 2-D convolution (`k`×`k`, given stride and padding) with bias.
    pub fn conv(&mut self, x: &Tap, out_c: u64, k: u64, stride: u64, pad: u64) -> Tap {
        let (in_c, h, w) = Self::chw(&x.shape);
        let oh = Self::pooled_dim(h, k, stride, pad);
        let ow = Self::pooled_dim(w, k, stride, pad);
        let out = TensorShape::chw(out_c, oh, ow);
        let macs = out.elements() * in_c * k * k;
        let weights = (out_c * in_c * k * k + out_c) * 4;
        let name = self.next_name("conv");
        self.raw(OpKind::Conv2d, name, 2 * macs, out, weights, &[x])
    }

    /// Depthwise convolution (`k`×`k`), channel count preserved.
    pub fn dwconv(&mut self, x: &Tap, k: u64, stride: u64, pad: u64) -> Tap {
        let (c, h, w) = Self::chw(&x.shape);
        let oh = Self::pooled_dim(h, k, stride, pad);
        let ow = Self::pooled_dim(w, k, stride, pad);
        let out = TensorShape::chw(c, oh, ow);
        let macs = out.elements() * k * k;
        let weights = (c * k * k + c) * 4;
        let name = self.next_name("dwconv");
        self.raw(OpKind::DepthwiseConv2d, name, 2 * macs, out, weights, &[x])
    }

    /// Max pooling.
    pub fn maxpool(&mut self, x: &Tap, k: u64, stride: u64, pad: u64) -> Tap {
        let (c, h, w) = Self::chw(&x.shape);
        let out = TensorShape::chw(
            c,
            Self::pooled_dim(h, k, stride, pad),
            Self::pooled_dim(w, k, stride, pad),
        );
        let flops = out.elements() * k * k;
        let name = self.next_name("maxpool");
        self.raw(OpKind::MaxPool, name, flops, out, 0, &[x])
    }

    /// Average pooling.
    pub fn avgpool(&mut self, x: &Tap, k: u64, stride: u64, pad: u64) -> Tap {
        let (c, h, w) = Self::chw(&x.shape);
        let out = TensorShape::chw(
            c,
            Self::pooled_dim(h, k, stride, pad),
            Self::pooled_dim(w, k, stride, pad),
        );
        let flops = out.elements() * (k * k + 1);
        let name = self.next_name("avgpool");
        self.raw(OpKind::AvgPool, name, flops, out, 0, &[x])
    }

    /// Global average pooling to `[1, C, 1, 1]`.
    pub fn gavgpool(&mut self, x: &Tap) -> Tap {
        let (c, h, w) = Self::chw(&x.shape);
        let out = TensorShape::chw(c, 1, 1);
        let flops = c * h * w;
        let name = self.next_name("gavgpool");
        self.raw(OpKind::GlobalAvgPool, name, flops, out, 0, &[x])
    }

    /// ReLU (or ReLU6 / leaky — identical accounting).
    pub fn relu(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let flops = out.elements();
        let name = self.next_name("relu");
        self.raw(OpKind::Relu, name, flops, out, 0, &[x])
    }

    /// Sigmoid / SiLU.
    pub fn sigmoid(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let flops = 4 * out.elements();
        let name = self.next_name("sigmoid");
        self.raw(OpKind::Sigmoid, name, flops, out, 0, &[x])
    }

    /// GELU.
    pub fn gelu(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let flops = 8 * out.elements();
        let name = self.next_name("gelu");
        self.raw(OpKind::Gelu, name, flops, out, 0, &[x])
    }

    /// Inference-mode batch norm (scale + shift).
    pub fn batchnorm(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let c = if out.rank() == 4 {
            out.dims[1]
        } else {
            *out.dims.last().unwrap_or(&1)
        };
        let flops = 2 * out.elements();
        let name = self.next_name("bn");
        self.raw(OpKind::BatchNorm, name, flops, out, 4 * c * 4, &[x])
    }

    /// Layer norm.
    pub fn layernorm(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let h = *out.dims.last().unwrap_or(&1);
        let flops = 8 * out.elements();
        let name = self.next_name("ln");
        self.raw(OpKind::LayerNorm, name, flops, out, 2 * h * 4, &[x])
    }

    /// Elementwise residual addition. Shapes must match.
    pub fn add(&mut self, a: &Tap, b: &Tap) -> Tap {
        assert_eq!(a.shape.elements(), b.shape.elements(), "add shape mismatch");
        let out = a.shape.clone();
        let flops = out.elements();
        let name = self.next_name("add");
        self.raw(OpKind::Add, name, flops, out, 0, &[a, b])
    }

    /// Elementwise multiply (squeeze-excite gating; broadcasts allowed).
    pub fn mul(&mut self, a: &Tap, b: &Tap) -> Tap {
        let out = if a.shape.elements() >= b.shape.elements() {
            a.shape.clone()
        } else {
            b.shape.clone()
        };
        let flops = out.elements();
        let name = self.next_name("mul");
        self.raw(OpKind::Mul, name, flops, out, 0, &[a, b])
    }

    /// Channel concatenation of NCHW taps with equal spatial dims.
    pub fn concat(&mut self, xs: &[&Tap]) -> Tap {
        assert!(!xs.is_empty());
        let (_, h, w) = Self::chw(&xs[0].shape);
        let c: u64 = xs.iter().map(|t| Self::chw(&t.shape).0).sum();
        let out = TensorShape::chw(c, h, w);
        let flops = out.elements(); // pure copy, charged as touched elements
        let name = self.next_name("concat");
        self.raw(OpKind::Concat, name, flops, out, 0, xs)
    }

    /// ShuffleNet channel shuffle.
    pub fn shuffle(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let flops = out.elements();
        let name = self.next_name("shuffle");
        self.raw(OpKind::ChannelShuffle, name, flops, out, 0, &[x])
    }

    /// Flatten to `[1, N]`.
    pub fn flatten(&mut self, x: &Tap) -> Tap {
        let out = TensorShape::new([1, x.shape.elements()]);
        let name = self.next_name("flatten");
        self.raw(OpKind::Reshape, name, 0, out, 0, &[x])
    }

    /// Fully connected layer with bias to `out_features`.
    pub fn dense(&mut self, x: &Tap, out_features: u64) -> Tap {
        let in_features = x.shape.elements();
        let out = TensorShape::new([1, out_features]);
        let macs = in_features * out_features;
        let weights = (in_features * out_features + out_features) * 4;
        let name = self.next_name("dense");
        self.raw(OpKind::Dense, name, 2 * macs, out, weights, &[x])
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, x: &Tap) -> Tap {
        let out = x.shape.clone();
        let flops = 5 * out.elements();
        let name = self.next_name("softmax");
        self.raw(OpKind::Softmax, name, flops, out, 0, &[x])
    }

    /// Nearest-neighbour resize / space-to-depth reorg to an explicit shape.
    pub fn resize(&mut self, x: &Tap, out: TensorShape) -> Tap {
        let flops = out.elements();
        let name = self.next_name("resize");
        self.raw(OpKind::Resize, name, flops, out, 0, &[x])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_flops() {
        let mut b = GraphBuilder::new("t", TensorShape::chw(3, 224, 224));
        let x = b.source();
        let y = b.conv(&x, 64, 7, 2, 3);
        assert_eq!(y.shape, TensorShape::chw(64, 112, 112));
        let g = b.finish();
        // 2 * out_elems * in_c * k*k
        let expect = 2 * 64 * 112 * 112 * 3 * 7 * 7;
        assert_eq!(g.op(0).flops, expect);
        assert_eq!(g.op(0).weight_bytes, (64 * 3 * 7 * 7 + 64) * 4);
    }

    #[test]
    fn residual_block_wires_skip() {
        let mut b = GraphBuilder::new("res", TensorShape::chw(16, 8, 8));
        let x = b.source();
        let c1 = b.conv(&x, 16, 3, 1, 1);
        let r1 = b.relu(&c1);
        let c2 = b.conv(&r1, 16, 3, 1, 1);
        let s = b.add(&c2, &c1);
        let _out = b.relu(&s);
        let g = b.finish();
        assert_eq!(g.op_count(), 5);
        // add (node 3) consumes conv c1 (node 0) and conv c2 (node 2)
        assert_eq!(g.inputs_of(3), &[2, 0]);
        // c1 is live across the cut between relu/conv2 (position 2): boundary
        // must include both c1 and r1 outputs.
        let c1_bytes = g.op(0).output_bytes();
        let r1_bytes = g.op(1).output_bytes();
        assert_eq!(g.boundary_bytes(2), c1_bytes + r1_bytes);
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = GraphBuilder::new("cat", TensorShape::chw(8, 4, 4));
        let x = b.source();
        let a = b.conv(&x, 8, 1, 1, 0);
        let c = b.conv(&x, 24, 1, 1, 0);
        let y = b.concat(&[&a, &c]);
        assert_eq!(y.shape, TensorShape::chw(32, 4, 4));
        b.finish();
    }

    #[test]
    fn dense_after_flatten() {
        let mut b = GraphBuilder::new("fc", TensorShape::chw(512, 7, 7));
        let x = b.source();
        let f = b.flatten(&x);
        let y = b.dense(&f, 1000);
        assert_eq!(y.shape.elements(), 1000);
        let g = b.finish();
        assert_eq!(g.op(1).flops, 2 * 512 * 7 * 7 * 1000);
    }

    #[test]
    fn pool_dims() {
        let mut b = GraphBuilder::new("p", TensorShape::chw(4, 10, 10));
        let x = b.source();
        let y = b.maxpool(&x, 2, 2, 0);
        assert_eq!(y.shape, TensorShape::chw(4, 5, 5));
        let z = b.avgpool(&y, 3, 1, 1);
        assert_eq!(z.shape, TensorShape::chw(4, 5, 5));
        let w = b.gavgpool(&z);
        assert_eq!(w.shape, TensorShape::chw(4, 1, 1));
        b.finish();
    }

    #[test]
    #[should_panic(expected = "add shape mismatch")]
    fn add_rejects_mismatch() {
        let mut b = GraphBuilder::new("bad", TensorShape::chw(4, 10, 10));
        let x = b.source();
        let a = b.conv(&x, 4, 3, 1, 1);
        let c = b.conv(&x, 8, 3, 1, 1);
        b.add(&a, &c);
    }
}
