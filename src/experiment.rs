//! High-level helpers gluing the workspace into the paper's experiments.
//!
//! Everything here is deterministic: the same device, seeds, and GA
//! configuration reproduce the same deployment and the same figures.

use gpu_sim::DeviceConfig;
use model_zoo::{benchmark_models, ModelId};
use qos_metrics::RequestOutcome;
use sched::{simulate, Policy, SimResult};
use split_core::{PlanSet, SplitPlan};
use split_runtime::Deployment;
use workload::{RequestTrace, Scenario};

/// The five Table 1 model names, in the paper's row order.
pub const PAPER_MODEL_NAMES: [&str; 5] = ["yolov2", "googlenet", "resnet50", "vgg19", "gpt2"];

/// The models SPLIT actually splits (§5.4 splits the *long* models).
pub const SPLIT_MODELS: [ModelId; 2] = [ModelId::ResNet50, ModelId::Vgg19];

/// Seed for the offline GA runs (ties every figure to one offline stage).
pub const OFFLINE_SEED: u64 = 99;

/// Run the offline stage for the paper's deployment: calibrate the five
/// benchmark models to Table 1 and GA-split the long ones (block counts
/// 2..=4, as Table 3 explores). Returns the plans keyed by model name.
pub fn paper_plans(dev: &DeviceConfig) -> PlanSet {
    use rayon::prelude::*;
    // The per-model offline stages are independent; run them through the
    // pool and insert in the original model order (par_iter collects in
    // index order, so the resulting PlanSet is identical to the old
    // sequential build at any SPLIT_THREADS). The GA inside each stage
    // sees a busy pool and degrades to its sequential path.
    let mut plans = PlanSet::new();
    let built: Vec<SplitPlan> = benchmark_models()
        .to_vec()
        .into_par_iter()
        .map(|id| {
            let g = id.build_calibrated(dev);
            if SPLIT_MODELS.contains(&id) {
                SplitPlan::offline(&g, dev, 2..=4, OFFLINE_SEED).0
            } else {
                SplitPlan::vanilla(&g, dev)
            }
        })
        .collect();
    for plan in built {
        plans.insert(plan);
    }
    plans
}

/// The paper's deployment: the five models with their offline plans,
/// ready for either the deterministic policies or the threaded runtime.
pub fn paper_deployment(dev: &DeviceConfig) -> Deployment {
    let mut d = Deployment::new();
    d.deploy_all(&paper_plans(dev));
    d
}

/// Serve one Table 2 scenario with one policy over the paper deployment.
pub fn run_scenario(policy: &Policy, scenario: Scenario, deployment: &Deployment) -> SimResult {
    let trace = RequestTrace::generate(scenario, &PAPER_MODEL_NAMES);
    simulate(policy, &trace.arrivals, deployment.table())
}

/// Outcomes of one scenario × policy (convenience for metric code).
pub fn scenario_outcomes(
    policy: &Policy,
    scenario: Scenario,
    deployment: &Deployment,
) -> Vec<RequestOutcome> {
    run_scenario(policy, scenario, deployment).outcomes()
}

/// Short-model names (Table 1's "Short" rows) — the requests whose QoS
/// SPLIT champions.
pub fn short_model_names() -> Vec<&'static str> {
    vec!["yolov2", "googlenet", "gpt2"]
}

/// Long-model names (Table 1's "Long" rows) — the requests SPLIT splits.
pub fn long_model_names() -> Vec<&'static str> {
    vec!["resnet50", "vgg19"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_has_five_models_with_long_ones_split() {
        let dev = DeviceConfig::jetson_nano();
        let d = paper_deployment(&dev);
        assert_eq!(d.len(), 5);
        for name in long_model_names() {
            assert!(
                d.table().get(name).blocks_us.len() >= 2,
                "{name} must be split"
            );
        }
        for name in short_model_names() {
            assert_eq!(
                d.table().get(name).blocks_us.len(),
                1,
                "{name} runs vanilla"
            );
        }
    }

    #[test]
    fn scenario_run_completes_all_requests() {
        let dev = DeviceConfig::jetson_nano();
        let d = paper_deployment(&dev);
        let r = run_scenario(&Policy::ClockWork, Scenario::table2(1), &d);
        assert_eq!(r.completions.len(), 1000);
    }
}
