//! `split-cli` — drive the reproduction from the command line.
//!
//! ```text
//! split-cli zoo                               # list the model zoo
//! split-cli plan resnet50 --blocks 3          # run the offline GA
//! split-cli plan-all --out plans.json         # offline stage for Table 1
//! split-cli simulate --scenario 3 --policy split [--plans plans.json]
//! split-cli dot vgg19 --blocks 3              # graphviz of a split model
//! ```
//!
//! Argument parsing is deliberately hand-rolled (no extra dependencies);
//! every unknown input prints usage and exits non-zero.

use split_repro::experiment;
use split_repro::gpu_sim::{block_time_us, DeviceConfig};
use split_repro::model_zoo::{profiling_models, ModelId};
use split_repro::qos_metrics::{per_model_std, violation_rate};
use split_repro::sched::policy::SplitCfg;
use split_repro::sched::{simulate, Policy};
use split_repro::split_analyze::{run_suite, SuiteCfg};
use split_repro::split_core::{evolve, GaConfig, PlanSet, SplitPlan};
use split_repro::split_obs::{Monitor, MonitorCfg, SloCfg};
use split_repro::split_runtime::Deployment;
use split_repro::workload::{RequestTrace, Scenario};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: split-cli <command> [options]

commands:
  zoo                                  list the model zoo with measured latencies
  plan <model> [--blocks N] [--seed S] run the offline GA on one model
  plan-all [--out FILE]                offline stage for the Table 1 deployment
  simulate [--scenario 1..6] [--policy split|clockwork|prema|rta]
           [--plans FILE] [--alpha A]  serve a Table 2 scenario and report QoS
           [--trace FILE]              also write a Chrome/Perfetto trace
                                       (open in ui.perfetto.dev)
           [--metrics]                 also print the telemetry snapshot
                                       (decision latency p50/p99, e2e, ...)
           [--burst]                   bursty (MMPP) arrivals instead of Poisson
           [--drift]                   non-stationary arrivals: a flash crowd
                                       (8x surge at t=60s) for the change-point
                                       detectors to catch
           [--drift-report FILE]       write the drift-watch report (windowed
                                       sketches + regime events) as JSON
           [--forensics FILE]          investigate the run: on a burn-rate
                                       alert, write the incident bundle to FILE
  dot <model> [--blocks N]             emit Graphviz DOT (split into N blocks)
  analyze [--all] [--deny-warnings]    statically verify plans, schedules, and
          [--json] [--requests N]      the lock-free hot paths (weak-memory
          [--only SAxxx[,SAyyy]]       model checking; DESIGN.md \u{a7}9/\u{a7}14);
          [--mc-budget N]              --all covers every zoo model, --only
          [--mc-wall-ms MS]            runs just the stages/machines for the
          [--bundle FILE]              listed SA codes, --mc-* bound the
                                       per-machine exploration (SA200 on
                                       exhaustion), --json emits diagnostics
                                       plus per-machine explored/pruned counts;
                                       --bundle verifies one incident bundle
                                       (SA4xx) instead
  forensics <bundle.json> [--json]     render an incident bundle: alert, queue
            [--perfetto FILE]          context, outliers, root-cause verdict;
            [--check]                  --perfetto re-exports the captured span
                                       trees, --check exits non-zero unless the
                                       bundle passes the SA4xx analyzer
  fleet [--devices N | --fleet SPEC]     serve a Poisson stream across a fleet of
        [--requests M] [--route POLICY]  simulated GPUs: routing + one SPLIT
        [--policy P] [--load F]          scheduler per spatial partition, sharded
        [--alpha A] [--seed S]           over the SPLIT_THREADS pool. SPEC is
        [--replicas R]                   class[:streams][*count],... over classes
        [--devices-csv FILE]             jetson|nx|edge (default: heterogeneous
        [--qos-csv FILE]                 mix of N devices); POLICY is low|jsq|p2c;
                                         --load F offers F x fleet capacity;
                                         --replicas R places each model on R
                                         devices (default: all); the run is
                                         verified by the SA60x cluster analyzer
                                         and exits non-zero on any finding
  monitor [--replay FILE | --scenario 1..6 [--policy P] [--alpha A]]
          [--frames N] [--interval MS] live dashboard (queue depth, utilization,
          [--prom FILE] [--json]       per-model p50/p99, SLO burn rate, drift
                                       panel) over a replayed trace or a fresh
                                       simulation; --prom also writes Prometheus
                                       metrics, --json dumps one frame per line
                                       as JSON instead of the ASCII panel
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "zoo" => cmd_zoo(),
        "plan" => cmd_plan(rest),
        "plan-all" => cmd_plan_all(rest),
        "simulate" => cmd_simulate(rest),
        "monitor" => cmd_monitor(rest),
        "dot" => cmd_dot(rest),
        // `analyze` owns its exit code: diagnostics are the output, not a
        // usage error — only bad arguments fall through to the usage path.
        "analyze" => match cmd_analyze(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "forensics" => match cmd_forensics(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        // `fleet` owns its exit code too: analyzer findings on the run
        // are the output, not a usage error.
        "fleet" => match cmd_fleet(rest) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        _ => Err(format!("unknown command {cmd:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Pull `--key value` out of an argument list.
fn opt(args: &[String], key: &str) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == key {
            return args
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{key} needs a value"));
        }
    }
    Ok(None)
}

fn find_model(name: &str) -> Result<ModelId, String> {
    profiling_models()
        .into_iter()
        .find(|id| id.info().name == name)
        .ok_or_else(|| {
            let names: Vec<&str> = profiling_models().iter().map(|id| id.info().name).collect();
            format!("unknown model {name:?}; available: {}", names.join(", "))
        })
}

fn cmd_zoo() -> Result<(), String> {
    let dev = DeviceConfig::jetson_nano();
    println!(
        "{:16} {:>6} {:>10} {:>12} {:>7}",
        "model", "ops", "GFLOPs", "latency(ms)", "type"
    );
    for id in profiling_models() {
        let g = id.build_calibrated(&dev);
        let info = id.info();
        println!(
            "{:16} {:>6} {:>10.1} {:>12.2} {:>7}",
            info.name,
            g.op_count(),
            g.total_flops() as f64 / 1e9,
            block_time_us(&g, &dev) / 1e3,
            format!("{:?}", info.class)
        );
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("plan needs a model name")?;
    let id = find_model(name)?;
    let blocks: usize = opt(args, "--blocks")?
        .map(|s| s.parse().map_err(|_| "bad --blocks"))
        .transpose()?
        .unwrap_or(3);
    let seed: u64 = opt(args, "--seed")?
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(experiment::OFFLINE_SEED);

    let dev = DeviceConfig::jetson_nano();
    let g = id.build_calibrated(&dev);
    let out = evolve(&g, &dev, &GaConfig::new(blocks).with_seed(seed));
    let p = &out.best_profile;
    println!(
        "model {name}: {} operators, vanilla {:.2} ms",
        g.op_count(),
        p.vanilla_us / 1e3
    );
    println!(
        "GA converged in {} generations ({} candidates profiled)",
        out.generations_run,
        out.history
            .last()
            .map(|h| h.candidates_profiled)
            .unwrap_or(0)
    );
    println!("cuts: {:?}", out.best.cuts());
    println!(
        "blocks: {}",
        p.block_times_us
            .iter()
            .map(|b| format!("{:.2}ms", b / 1e3))
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "σ = {:.3} ms, overhead = {:.1}%, range = {:.2}%",
        p.std_us / 1e3,
        100.0 * p.overhead_ratio,
        p.range_pct
    );
    Ok(())
}

fn cmd_plan_all(args: &[String]) -> Result<(), String> {
    let dev = DeviceConfig::jetson_nano();
    let plans = experiment::paper_plans(&dev);
    for p in plans.iter() {
        println!(
            "{:12} {} block(s){}",
            p.model,
            p.block_count(),
            if p.is_split() {
                format!(", cuts {:?}", p.cuts)
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = opt(args, "--out")? {
        let path = PathBuf::from(path);
        plans.save(&path).map_err(|e| e.to_string())?;
        println!("saved to {}", path.display());
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let scenario: usize = opt(args, "--scenario")?
        .map(|s| s.parse().map_err(|_| "bad --scenario"))
        .transpose()?
        .unwrap_or(3);
    if !(1..=6).contains(&scenario) {
        return Err("scenario must be 1..=6 (Table 2)".into());
    }
    let alpha: f64 = opt(args, "--alpha")?
        .map(|s| s.parse().map_err(|_| "bad --alpha"))
        .transpose()?
        .unwrap_or(4.0);
    let policy = match opt(args, "--policy")?.as_deref().unwrap_or("split") {
        "split" => Policy::Split(SplitCfg::default()),
        "clockwork" => Policy::ClockWork,
        "prema" => Policy::Prema(Default::default()),
        "rta" => Policy::Rta(Default::default()),
        other => return Err(format!("unknown policy {other:?}")),
    };

    let dev = DeviceConfig::jetson_nano();
    let deployment = match opt(args, "--plans")? {
        Some(path) => {
            let plans = PlanSet::load(&PathBuf::from(&path)).map_err(|e| format!("{path}: {e}"))?;
            let mut d = Deployment::new();
            d.deploy_all(&plans);
            d
        }
        None => experiment::paper_deployment(&dev),
    };

    let trace_out = opt(args, "--trace")?;
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let want_burst = args.iter().any(|a| a == "--burst");
    let want_drift = args.iter().any(|a| a == "--drift");
    let drift_report_out = opt(args, "--drift-report")?;
    let forensics_out = opt(args, "--forensics")?;
    if want_burst && want_drift {
        return Err("--burst and --drift are mutually exclusive".into());
    }

    let trace = if want_drift {
        // A flash crowd on top of the scenario's nominal interval: calm
        // until t=60 s, then an 8× surge for 40 s. With the watch's 10 s
        // windows the detectors finish warming up around window 5 and
        // the onset lands in window 6.
        let profile = split_repro::workload::DriftProfile::FlashCrowd {
            base_interval_us: Scenario::table2(scenario).lambda_us(),
            onset_us: 60_000_000.0,
            surge: 8.0,
            dwell_us: 40_000_000.0,
        };
        RequestTrace::generate_drift(
            Scenario::table2(scenario),
            &experiment::PAPER_MODEL_NAMES,
            profile,
        )
    } else if want_burst {
        // Compress the pedestrian MMPP so the burst volleys overload the
        // device and the burn-rate alert has something to fire on.
        let burst = split_repro::workload::BurstConfig {
            calm_interval_us: 50_000.0,
            burst_interval_us: 1_500.0,
            calm_dwell_us: 300_000.0,
            burst_dwell_us: 400_000.0,
        };
        RequestTrace::generate_burst(
            Scenario::table2(scenario),
            &experiment::PAPER_MODEL_NAMES,
            burst,
        )
    } else {
        RequestTrace::generate(Scenario::table2(scenario), &experiment::PAPER_MODEL_NAMES)
    };
    let r = simulate(&policy, &trace.arrivals, deployment.table());
    let outcomes = r.outcomes();
    println!(
        "policy {} on scenario {scenario}: {} requests",
        policy.name(),
        outcomes.len()
    );
    println!(
        "violation rate @ α={alpha}: {:.2}%",
        100.0 * violation_rate(&outcomes, alpha)
    );
    println!("\nper-model jitter:");
    for row in per_model_std(&outcomes) {
        println!(
            "  {:12} n={:<4} mean {:>8.2} ms  σ {:>7.2} ms",
            row.model,
            row.count,
            row.mean_us / 1e3,
            row.std_us / 1e3
        );
    }

    if let Some(path) = trace_out {
        let path = PathBuf::from(path);
        split_repro::split_telemetry::write_chrome_trace(
            &r.recorder,
            &format!("split-sim ({} / scenario {scenario})", policy.name()),
            &path,
        )
        .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "\nwrote Perfetto trace ({} events) to {}",
            r.recorder.len(),
            path.display()
        );
    }
    if let Some(path) = drift_report_out {
        let path = PathBuf::from(path);
        let report = r.drift(split_repro::split_watch::WatchCfg {
            alpha,
            ..split_repro::split_watch::WatchCfg::default()
        });
        println!("\n{}", report.render_text());
        report
            .save(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote drift report to {}", path.display());
    }
    if let Some(path) = forensics_out {
        let path = PathBuf::from(path);
        let mut cfg = split_repro::split_forensics::ForensicsCfg::default();
        cfg.slo.alpha = alpha;
        let inv = r.investigate(&cfg);
        println!("\nforensics: {}", inv.alerts.summary());
        match inv.bundles.first() {
            None => println!("no burn-rate alert fired; no incident bundle written"),
            Some(bundle) => {
                for b in &inv.bundles {
                    println!("  {}", b.verdict.text);
                }
                bundle
                    .save(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                println!(
                    "wrote incident bundle ({} outliers, {}/{} violating captured) to {}",
                    bundle.verdict.outliers,
                    bundle.verdict.captured_violating,
                    bundle.verdict.violating,
                    path.display()
                );
            }
        }
    }
    if want_metrics {
        println!("\ntelemetry:\n{}", r.metrics().snapshot().render_markdown());
        println!(
            "mean e2e latency by critical-path component (ms):\n{}",
            split_repro::qos_metrics::breakdown_markdown(&split_repro::split_obs::rollup_by_model(
                &r.attribution()
            ))
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" | "--deny-warnings" | "--json" => i += 1,
            "--requests" | "--bundle" | "--only" | "--mc-budget" | "--mc-wall-ms" => i += 2,
            other => return Err(format!("analyze: unknown option {other:?}")),
        }
    }
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let json = args.iter().any(|a| a == "--json");
    if let Some(path) = opt(args, "--bundle")? {
        // Single-bundle mode: SA4xx over one incident document.
        let path = PathBuf::from(path);
        let bundle = split_repro::split_forensics::IncidentBundle::load(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let report = split_repro::split_analyze::lint_bundle(&bundle);
        if json {
            println!("{}", report.render_json());
        } else if report.is_empty() {
            eprintln!("bundle {}: clean", path.display());
        } else {
            print!("{}", report.render_text());
        }
        return Ok(if report.fails(deny_warnings) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }
    let mut cfg = if args.iter().any(|a| a == "--all") {
        SuiteCfg::all_models()
    } else {
        SuiteCfg::default()
    };
    if let Some(n) = opt(args, "--requests")? {
        cfg.requests = n.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(codes) = opt(args, "--only")? {
        let codes: Vec<String> = codes
            .split(',')
            .map(|c| c.trim().to_ascii_uppercase())
            .filter(|c| !c.is_empty())
            .collect();
        for c in &codes {
            if !c.starts_with("SA") || c.len() != 5 || !c[2..].bytes().all(|b| b.is_ascii_digit()) {
                return Err(format!("bad --only code {c:?} (expected SAxxx)"));
            }
        }
        if codes.is_empty() {
            return Err("--only needs at least one SA code".into());
        }
        cfg.only = Some(codes);
    }
    if let Some(n) = opt(args, "--mc-budget")? {
        cfg.mc_budget.max_transitions = n.parse().map_err(|_| "bad --mc-budget")?;
    }
    if let Some(ms) = opt(args, "--mc-wall-ms")? {
        cfg.mc_budget.wall_ms = ms.parse().map_err(|_| "bad --mc-wall-ms")?;
    }

    let out = run_suite(&cfg);
    let merged = out.merged();
    if json {
        println!("{}", out.render_json());
    } else {
        eprintln!(
            "analyzed {} plan(s), {} schedule(s), {} bundle(s), {} model-checked \
             execution(s), {} drift-watch probe(s), {} fleet run(s)",
            out.plans_checked,
            out.schedules_checked,
            out.bundles_checked,
            out.interleavings,
            out.watch_checks,
            out.clusters_checked
        );
        for s in &out.machine_stats {
            eprintln!(
                "  model {}: {} executions, {} transitions, {} sleep-set prunes, {} ms{}",
                s.name,
                s.executions,
                s.transitions,
                s.sleep_prunes,
                s.wall_ms,
                if s.budget_exceeded {
                    " [BUDGET EXCEEDED]"
                } else {
                    ""
                }
            );
        }
        for (section, report) in [
            ("plans", &out.plan_report),
            ("schedules", &out.schedule_report),
            ("determinism", &out.determinism_report),
            ("interleavings", &out.interleave_report),
            ("attribution", &out.attribution_report),
            ("forensics", &out.forensics_report),
            ("watch", &out.watch_report),
            ("cluster", &out.cluster_report),
        ] {
            if report.is_empty() {
                eprintln!("  {section}: clean");
            } else {
                eprintln!("  {section}:");
                print!("{}", report.render_text());
            }
        }
    }
    Ok(if merged.fails(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_forensics(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("forensics needs a bundle path")?;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" | "--check" => i += 1,
            "--perfetto" => i += 2,
            other => return Err(format!("forensics: unknown option {other:?}")),
        }
    }
    let path = PathBuf::from(path);
    let bundle = split_repro::split_forensics::IncidentBundle::load(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;

    if args.iter().any(|a| a == "--json") {
        println!("{}", bundle.to_json());
    } else {
        print!("{}", bundle.render_text());
    }
    if let Some(out) = opt(args, "--perfetto")? {
        let out = PathBuf::from(out);
        bundle
            .write_perfetto(&out)
            .map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("wrote Perfetto trace to {}", out.display());
    }
    if args.iter().any(|a| a == "--check") {
        let report = split_repro::split_analyze::lint_bundle(&bundle);
        if report.is_empty() {
            eprintln!("check: clean (SA4xx)");
        } else {
            print!("{}", report.render_text());
        }
        if report.fails(true) {
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fleet(args: &[String]) -> Result<ExitCode, String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--devices" | "--fleet" | "--requests" | "--route" | "--policy" | "--load"
            | "--alpha" | "--seed" | "--replicas" | "--devices-csv" | "--qos-csv" => i += 2,
            other => return Err(format!("fleet: unknown option {other:?}")),
        }
    }
    use split_repro::split_cluster::{
        offered_interval_us, simulate_fleet, Fleet, Placement, RouteCfg, RoutePolicy,
    };
    use split_repro::split_obs::{render_saturation_table, saturation_csv};

    let devices: usize = opt(args, "--devices")?
        .map(|s| s.parse().map_err(|_| "bad --devices"))
        .transpose()?
        .unwrap_or(16);
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let spec = match opt(args, "--fleet")? {
        Some(s) => {
            split_repro::gpu_sim::FleetSpec::parse(&s).map_err(|e| format!("--fleet: {e}"))?
        }
        None => split_repro::gpu_sim::FleetSpec::heterogeneous(devices),
    };
    let requests: usize = opt(args, "--requests")?
        .map(|s| s.parse().map_err(|_| "bad --requests"))
        .transpose()?
        .unwrap_or(100_000);
    if requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    let route_policy = match opt(args, "--route")? {
        Some(s) => RoutePolicy::parse(&s)
            .ok_or_else(|| format!("unknown routing policy {s:?} (expected low, jsq, or p2c)"))?,
        None => RoutePolicy::LeastOutstandingWork,
    };
    let policy = match opt(args, "--policy")?.as_deref().unwrap_or("split") {
        "split" => Policy::Split(SplitCfg::default()),
        "clockwork" => Policy::ClockWork,
        "prema" => Policy::Prema(Default::default()),
        "rta" => Policy::Rta(Default::default()),
        other => return Err(format!("unknown policy {other:?}")),
    };
    let load: f64 = opt(args, "--load")?
        .map(|s| s.parse().map_err(|_| "bad --load"))
        .transpose()?
        .unwrap_or(0.6);
    if load <= 0.0 || !load.is_finite() {
        return Err("--load must be positive".into());
    }
    let alpha: f64 = opt(args, "--alpha")?
        .map(|s| s.parse().map_err(|_| "bad --alpha"))
        .transpose()?
        .unwrap_or(4.0);
    let seed: u64 = opt(args, "--seed")?
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or_else(|| RouteCfg::default().seed);
    let replicas: Option<usize> = opt(args, "--replicas")?
        .map(|s| s.parse().map_err(|_| "bad --replicas"))
        .transpose()?;
    if replicas == Some(0) {
        return Err("--replicas must be at least 1".into());
    }

    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let table = deployment.table();
    let fleet = Fleet::new(&spec, table);
    let placement = match replicas {
        Some(r) => Placement::replicated(&fleet, table, r),
        None => Placement::full(&fleet, table),
    };
    let interval_us = offered_interval_us(table, &fleet, load);
    let trace = RequestTrace::generate(
        Scenario::fleet(interval_us, requests),
        &experiment::PAPER_MODEL_NAMES,
    );
    let result = simulate_fleet(
        &policy,
        &trace.arrivals,
        &fleet,
        &placement,
        &RouteCfg {
            policy: route_policy,
            seed,
        },
    );

    println!(
        "fleet {}: {} device(s), {} lane(s), capacity {:.2} jetson-units",
        fleet.spec().render(),
        fleet.devices().len(),
        fleet.lanes().len(),
        fleet.capacity()
    );
    println!(
        "router {} (seed {seed:#x}) over {} placed model(s); scheduler {}; \
         offered load {load:.2} (mean interval {:.1} µs)",
        route_policy.name(),
        placement.len(),
        policy.name(),
        interval_us
    );
    let span_s = result.span_us() / 1e6;
    println!(
        "{} request(s): {} completed over {span_s:.2} s simulated \
         ({:.0} req/s of simulated time)",
        trace.arrivals.len(),
        result.completed(),
        result.completed() as f64 / span_s.max(1e-9)
    );
    println!("schedule digest: {:#018x}", result.digest());
    let outcomes = result.outcomes();
    println!(
        "violation rate @ α={alpha}: {:.2}%",
        100.0 * violation_rate(&outcomes, alpha)
    );

    let saturation = result.device_saturation(&fleet);
    println!("\n{}", render_saturation_table(&saturation));

    if let Some(path) = opt(args, "--devices-csv")? {
        let path = PathBuf::from(path);
        std::fs::write(&path, saturation_csv(&saturation))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote per-device saturation to {}", path.display());
    }
    if let Some(path) = opt(args, "--qos-csv")? {
        let path = PathBuf::from(path);
        let mut csv = String::from("alpha,violation_rate\n");
        for (a, v) in split_repro::qos_metrics::violation_curve(&outcomes, 1, 12) {
            csv.push_str(&format!("{a},{v:.6}\n"));
        }
        std::fs::write(&path, csv).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote cluster QoS curve to {}", path.display());
    }

    let report =
        split_repro::split_analyze::lint_cluster(&trace.arrivals, &fleet, &placement, &result);
    if report.is_empty() {
        eprintln!("cluster lint: clean (SA601, SA602, SA603)");
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.fails(true) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--replay" | "--scenario" | "--policy" | "--alpha" | "--frames" | "--interval"
            | "--prom" => i += 2,
            "--json" => i += 1,
            other => return Err(format!("monitor: unknown option {other:?}")),
        }
    }
    let want_json = args.iter().any(|a| a == "--json");
    let frames: usize = opt(args, "--frames")?
        .map(|s| s.parse().map_err(|_| "bad --frames"))
        .transpose()?
        .unwrap_or(5)
        .max(1);
    let interval_ms: u64 = opt(args, "--interval")?
        .map(|s| s.parse().map_err(|_| "bad --interval"))
        .transpose()?
        .unwrap_or(250);
    let alpha: f64 = opt(args, "--alpha")?
        .map(|s| s.parse().map_err(|_| "bad --alpha"))
        .transpose()?
        .unwrap_or(4.0);

    let recorder = match opt(args, "--replay")? {
        Some(path) => {
            let path = PathBuf::from(path);
            split_repro::split_telemetry::read_chrome_trace(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => {
            let scenario: usize = opt(args, "--scenario")?
                .map(|s| s.parse().map_err(|_| "bad --scenario"))
                .transpose()?
                .unwrap_or(3);
            if !(1..=6).contains(&scenario) {
                return Err("scenario must be 1..=6 (Table 2)".into());
            }
            let policy = match opt(args, "--policy")?.as_deref().unwrap_or("split") {
                "split" => Policy::Split(SplitCfg::default()),
                "clockwork" => Policy::ClockWork,
                "prema" => Policy::Prema(Default::default()),
                "rta" => Policy::Rta(Default::default()),
                other => return Err(format!("unknown policy {other:?}")),
            };
            let dev = DeviceConfig::jetson_nano();
            let deployment = experiment::paper_deployment(&dev);
            let trace =
                RequestTrace::generate(Scenario::table2(scenario), &experiment::PAPER_MODEL_NAMES);
            simulate(&policy, &trace.arrivals, deployment.table()).recorder
        }
    };
    if recorder.is_empty() {
        return Err("nothing to monitor: the trace has no events".into());
    }

    // Replay the timeline in `frames` equal simulated-time windows,
    // rendering the dashboard after each.
    let events: Vec<split_repro::split_telemetry::Event> = recorder.events().cloned().collect();
    let t0 = events.first().map(|e| e.t_us()).unwrap_or(0.0);
    let t1 = events.last().map(|e| e.t_us()).unwrap_or(0.0);
    let span = (t1 - t0).max(1.0);
    let mut monitor = Monitor::new(MonitorCfg {
        slo: SloCfg {
            alpha,
            ..SloCfg::default()
        },
        ..MonitorCfg::default()
    });
    let mut fed = 0usize;
    for frame in 1..=frames {
        let cutoff = t0 + span * frame as f64 / frames as f64;
        while fed < events.len() && (frame == frames || events[fed].t_us() <= cutoff) {
            monitor.feed(&events[fed]);
            fed += 1;
        }
        if want_json {
            let f = monitor.frame();
            println!("{}", serde_json::to_string(&f).expect("frames serialize"));
        } else {
            println!("{}", monitor.render());
        }
        if interval_ms > 0 && frame < frames {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }

    if let Some(path) = opt(args, "--prom")? {
        let path = PathBuf::from(path);
        std::fs::write(&path, monitor.prometheus())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote Prometheus metrics to {}", path.display());
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("dot needs a model name")?;
    let id = find_model(name)?;
    let dev = DeviceConfig::jetson_nano();
    let g = id.build_calibrated(&dev);
    let spec = match opt(args, "--blocks")? {
        Some(b) => {
            let blocks: usize = b.parse().map_err(|_| "bad --blocks")?;
            let out = evolve(&g, &dev, &GaConfig::new(blocks));
            Some(out.best)
        }
        None => None,
    };
    print!("{}", split_repro::dnn_graph::to_dot(&g, spec.as_ref()));
    Ok(())
}

// Exercised by tests/cli.rs; kept here so the binary stays self-contained.
#[allow(dead_code)]
fn _assert_plans_type(p: &PlanSet) -> usize {
    p.iter().map(SplitPlan::block_count).sum()
}
