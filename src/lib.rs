#![warn(missing_docs)]
//! # split-repro — reproduction of *SPLIT: QoS-Aware DNN Inference on
//! Shared GPU via Evenly-Sized Model Splitting* (ICPP 2023)
//!
//! This facade crate re-exports the whole workspace and provides the
//! high-level [`experiment`] helpers shared by the examples, the
//! integration tests, and the figure/table harnesses.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`dnn_graph`] | operator-DAG IR with FLOP/byte accounting |
//! | [`model_zoo`] | the 11 §3.1 architectures, calibrated to Table 1 |
//! | [`gpu_sim`] | deterministic shared-GPU timing simulator |
//! | [`profiler`] | block profiling and cut-point sweeps (Figure 2) |
//! | [`split_core`] | GA splitting, Eq. 1/2, greedy preemption, elasticity |
//! | [`sched`] | SPLIT + ClockWork/PREMA/RT-A serving policies |
//! | [`workload`] | Poisson scenario generation (Table 2) |
//! | [`qos_metrics`] | violation-rate curves and jitter (Figures 6–7) |
//! | [`split_runtime`] | the threaded online serving system (Figure 4) |
//! | [`split_telemetry`] | lock-free metrics, lifecycle tracing, Perfetto export |
//! | [`split_obs`] | causal spans, latency attribution, SLO burn-rate, dashboard (DESIGN.md §10) |
//! | [`split_watch`] | streaming drift watch: windowed sketches, change-point detectors (DESIGN.md §15) |
//! | [`split_cluster`] | fleet of simulated GPUs, cluster router, sharded engine (DESIGN.md §17) |
//! | [`split_analyze`] | static verification of plans, schedules, telemetry (DESIGN.md §9) |
//!
//! ## Quickstart
//!
//! ```
//! use split_repro::experiment;
//! use split_repro::sched::{simulate, Policy};
//! use split_repro::workload::{RequestTrace, Scenario};
//!
//! let dev = split_repro::gpu_sim::DeviceConfig::jetson_nano();
//! let deployment = experiment::paper_deployment(&dev);
//! let trace = RequestTrace::generate(
//!     Scenario::table2(1),
//!     &experiment::PAPER_MODEL_NAMES,
//! );
//! let result = simulate(&Policy::all_default()[0], &trace.arrivals, deployment.table());
//! assert_eq!(result.completions.len(), 1000);
//! ```

pub use dnn_graph;
pub use gpu_sim;
pub use model_zoo;
pub use profiler;
pub use qos_metrics;
pub use rayon;
pub use sched;
pub use split_analyze;
pub use split_cluster;
pub use split_core;
pub use split_forensics;
pub use split_obs;
pub use split_runtime;
pub use split_telemetry;
pub use split_watch;
pub use workload;

pub mod experiment;
