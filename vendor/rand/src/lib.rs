//! Offline stand-in for `rand` (0.10-flavoured API surface).
//!
//! Provides a deterministic, seedable generator (`StdRng`, xoshiro256**
//! seeded via SplitMix64) and the `random_range` / `random_bool` methods
//! the workspace uses. Determinism given a seed is the only contract the
//! callers rely on; statistical quality of xoshiro256** is far beyond
//! what the simulations need.

use std::ops::{Range, RangeInclusive};

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)` (Lemire-style rejection-free reduction is
    /// unnecessary here; modulo bias at these bounds is far below what the
    /// simulations can observe, but we still debias for correctness).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.bounded_u64(span);
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.bounded_u64(span + 1);
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        start + (end - start) * rng.next_f64()
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Uniform sample from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

/// The conventional glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, SampleRange, SeedableRng, StdRng};
}

/// A generator seeded from the system entropy. This offline stand-in has
/// no entropy source, so it derives the seed from the monotonic clock —
/// callers use it only for non-reproducible smoke runs.
pub fn rng() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn not_obviously_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(rng.next_u64());
        }
        assert_eq!(seen.len(), 1_000);
    }
}
