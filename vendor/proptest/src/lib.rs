//! Offline stand-in for `proptest`.
//!
//! Deterministic generate-and-check: each `proptest!` test derives a
//! fixed RNG seed from its own name, draws `ProptestConfig::cases`
//! random inputs from the declared strategies, and runs the body.
//! `prop_assert*` failures panic with the assertion message (there is
//! no shrinking — the failing values are whatever the RNG produced);
//! `prop_assume!` rejects the case and draws another.
//!
//! Strategy combinators cover the workspace's usage: integer and float
//! ranges, tuples, `collection::vec`, `prop_map`, `prop_flat_map`,
//! and `Just`.

use std::ops::{Range, RangeInclusive};

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the input: draw another case.
    Reject(String),
}

impl TestCaseError {
    /// Construct the failure variant.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// Construct the rejection variant.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

/// Result type produced by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration; only `cases` is honored by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator (SplitMix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every run of a test is reproducible.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, never zero.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Debiased via rejection over the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (end - start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let __max_rejects: u32 = __config.cases.saturating_mul(256).max(1024);
            while __passed < __config.cases {
                let __outcome: $crate::TestCaseResult = (|| {
                    $(
                        let $pat = $crate::Strategy::generate(&{ $strat }, &mut __rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        if __rejected > __max_rejects {
                            panic!(
                                "proptest `{}`: too many prop_assume rejections ({}): {}",
                                stringify!($name), __rejected, __why
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed after {} passing case(s): {}",
                            stringify!($name), __passed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: `{}` = {:?}, `{}` = {:?}",
                stringify!($left), __l, stringify!($right), __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides = {:?}",
                __l
            )));
        }
    }};
}

/// Reject (not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in 0.5f64..2.0, i in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!((-4..=4).contains(&i));
        }

        #[test]
        fn vec_and_map_compose(
            v in collection::vec((0u8..10, 0u8..10), 1..6),
            s in pair().prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(s < 200, "sum {s} out of range");
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn flat_map_respects_dependency(
            (n, idx) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            prop_assume!(n > 0);
            prop_assert!(idx < n, "idx {idx} vs n {n}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_honored(_x in 0u8..5) {
            // Body runs; the case count is implicit in termination.
            prop_assert!(true);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
