//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no registry access, so this vendored stub
//! exposes exactly the surface the workspace benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{bench_function,
//! sample_size, finish}`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! and the `criterion_group!` / `criterion_main!` macros — and runs
//! each benchmark a small, fixed number of iterations, reporting the
//! median wall-clock time. It is a smoke harness, not a statistics
//! engine: the repo's tracked numbers come from `perfbench`.

use std::time::{Duration, Instant};

/// How a batched setup's output is sized (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    fn new(iters: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(iters),
            iters,
        }
    }

    /// Time `f` once per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = f();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark and print its median time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(Criterion::ITERS);
        f(&mut b);
        println!("{}/{}: median {} ns", self.name, id.into(), b.median_ns());
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Iterations per benchmark (warmup-free smoke harness).
    const ITERS: usize = 10;

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(50)
            .bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, Criterion::ITERS);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut b = Bencher::new(5);
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(b.samples.len(), 5);
    }
}
