//! Offline stand-in for `bytes`.
//!
//! `Bytes` is an immutable `Arc<[u8]>` window and `BytesMut` a growable
//! buffer with cursor-style consumption (`advance`, `split_to`). Only the
//! surface the codec layer uses is provided; semantics (zero-copy
//! `freeze`, cheap `clone`, shared sub-slices) match the real crate.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Wrap a static slice (copies here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Shared sub-window `[at, len)`; `self` keeps `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Shared sub-window `[0, at)`; `self` keeps `[at, len)`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Drop the first `n` bytes from view.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    /// Copy the visible bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

/// Growable byte buffer with cursor-style consumption.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spare capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for at least `additional` further bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Append a byte slice (BufMut spelling).
    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` in little-endian order.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Discard the first `n` bytes.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.buf.len(), "advance out of bounds");
        self.buf.drain(..n);
    }

    /// Remove and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to out of bounds");
        let tail = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, tail);
        BytesMut { buf: head }
    }

    /// Remove and return bytes `[at, len)`; `self` keeps `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_off out of bounds");
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", self.as_ref())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { buf: v.to_vec() }
    }
}

/// Read-cursor trait (subset).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Discard the next `n` bytes.
    fn advance(&mut self, n: usize);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        Bytes::advance(self, n);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        BytesMut::advance(self, n);
    }
}

/// Write-cursor trait (subset).
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, data: &[u8]);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        BytesMut::put_slice(self, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEADBEEF);
        b.put_slice(b"hi");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        assert_eq!(&frozen[..4], &0xDEADBEEFu32.to_le_bytes());
        assert_eq!(&frozen[4..], b"hi");
    }

    #[test]
    fn bytesmut_cursor_ops() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        b.advance(1);
        assert_eq!(&b[..], b"bcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"bc");
        assert_eq!(&b[..], b"def");
    }

    #[test]
    fn bytes_shared_windows() {
        let mut b = Bytes::copy_from_slice(b"0123456789");
        let head = b.split_to(4);
        assert_eq!(&head[..], b"0123");
        assert_eq!(&b[..], b"456789");
        let clone = b.clone();
        b.advance(2);
        assert_eq!(&b[..], b"6789");
        assert_eq!(&clone[..], b"456789");
    }

    #[test]
    fn indexing_works_via_deref() {
        let mut b = BytesMut::new();
        b.put_u8(0x7F);
        assert_eq!(b[0], 0x7F);
    }
}
