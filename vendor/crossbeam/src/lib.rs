//! Offline stand-in for `crossbeam` — the `channel` module only.
//!
//! Multi-producer multi-consumer channels built on `Mutex` + `Condvar`,
//! with the same disconnect semantics as crossbeam-channel: `recv` fails
//! once all senders are gone and the queue is drained; `send` fails once
//! all receivers are gone. A two-arm `select!` macro covers the pattern
//! the runtime's responder loop uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        /// Signaled on enqueue and on disconnect (wakes receivers).
        readable: Condvar,
        /// Signaled on dequeue and on disconnect (wakes bounded senders).
        writable: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with no message.
        Timeout,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clone freely (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner
                    .capacity
                    .map(|cap| inner.queue.len() >= cap)
                    .unwrap_or(false);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.chan.readable.notify_one();
                    return Ok(());
                }
                inner = self.chan.writable.wait(inner).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.chan.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or total disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.readable.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.writable.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) = self
                    .chan
                    .readable
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Iterate messages until disconnect (borrowing).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().receivers += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.chan.writable.notify_all();
            }
        }
    }

    /// Borrowing iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[doc(hidden)]
    pub enum __Selected<A, B> {
        /// First arm fired.
        A(Result<A, RecvError>),
        /// Second arm fired.
        B(Result<B, RecvError>),
    }

    /// Wait on two receivers, mirroring `crossbeam::channel::select!` for
    /// the two-`recv` form. The arm bodies run *outside* the internal
    /// polling loop, so `break` / `continue` / `return` inside an arm
    /// target the caller's control flow exactly as with real crossbeam.
    #[macro_export]
    macro_rules! select {
        (
            recv($r1:expr) -> $m1:pat => $b1:expr ,
            recv($r2:expr) -> $m2:pat => $b2:expr $(,)?
        ) => {
            $crate::select!(recv($r1) -> $m1 => { $b1 } recv($r2) -> $m2 => { $b2 })
        };
        (
            recv($r1:expr) -> $m1:pat => $b1:block
            recv($r2:expr) -> $m2:pat => $b2:block
        ) => {{
            let __choice = loop {
                match $r1.try_recv() {
                    ::core::result::Result::Ok(v) => {
                        break $crate::channel::__Selected::A(::core::result::Result::Ok(v));
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        break $crate::channel::__Selected::A(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $r2.try_recv() {
                    ::core::result::Result::Ok(v) => {
                        break $crate::channel::__Selected::B(::core::result::Result::Ok(v));
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        break $crate::channel::__Selected::B(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                ::std::thread::sleep(::std::time::Duration::from_micros(50));
            };
            match __choice {
                $crate::channel::__Selected::A($m1) => $b1,
                $crate::channel::__Selected::B($m2) => $b2,
            }
        }};
    }

    // `crossbeam::channel::select!` path form.
    pub use crate::select;
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_then_unblocks() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn threads_share_one_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn select_two_arms_and_outer_break() {
        let (tx1, rx1) = unbounded::<u8>();
        let (tx2, rx2) = unbounded::<u8>();
        tx2.send(7).unwrap();
        let mut tx1 = Some(tx1);
        let mut got = Vec::new();
        // `break` / `continue` inside an arm must target this loop, not
        // the macro's internal polling loop.
        loop {
            crate::select! {
                recv(rx1) -> msg => {
                    let Ok(v) = msg else { break };
                    got.push(("a", v));
                }
                recv(rx2) -> msg => {
                    let Ok(v) = msg else { break };
                    got.push(("b", v));
                    if let Some(t) = tx1.take() {
                        t.send(1).unwrap(); // dropped after send: rx1 disconnects
                    }
                    continue;
                }
            }
        }
        drop(tx2);
        assert_eq!(got, vec![("b", 7), ("a", 1)]);
    }
}
