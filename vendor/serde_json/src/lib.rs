//! Offline stand-in for `serde_json`.
//!
//! Implements the JSON text layer over the vendored `serde` value model:
//! a strict parser, compact and pretty writers, and the `to_string` /
//! `from_str` / `from_value` entry points the workspace uses. Float
//! output uses Rust's shortest-round-trip formatting, so values survive a
//! text round trip exactly (the `float_roundtrip` behavior of the real
//! crate).

pub use serde::{Error, Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize a value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize_value(&value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Deserialize from an already-parsed [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        // Rust's `Display` for f64 picks the shortest string that parses
        // back to the same bits, which is exactly the round-trip contract.
        // JSON has no non-finite literals; map them to null like a lenient
        // writer (the workspace never serializes non-finite values).
        Number::Float(v) if v.is_finite() => out.push_str(&v.to_string()),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input came from &str, so the
                    // sequence is valid; reassemble it.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::custom("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = 0.37f64;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn integral_float_survives() {
        // 1.0 prints as "1"; reading it back into f64 must still give 1.0.
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn nested_structure() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_indents() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse("{{{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }
}
