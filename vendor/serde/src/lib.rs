//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization stack with the same surface the code
//! base uses: `Serialize` / `Deserialize` traits, `#[derive(Serialize,
//! Deserialize)]` for named-field structs and unit enums, and a JSON
//! value model consumed by the sibling `serde_json` stand-in.
//!
//! The data model is deliberately JSON-shaped (`Value`), not the full
//! serde visitor architecture: every supported type converts to and from
//! a `Value` tree. That covers everything this repository serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integer forms are kept exact so `u64`/`i64` round-trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Numeric value as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Numeric value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove a key; returns its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::vec::IntoIter<(&'a String, &'a Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(|(k, v)| (k, v))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// A JSON value tree — the interchange type between `Serialize`,
/// `Deserialize`, and `serde_json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the JSON [`Value`] model.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers module, mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, Error};

    /// Marker for types deserializable without borrowing the input, as in
    /// real serde. Everything our `Deserialize` covers qualifies.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialization helpers module, mirroring `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by generated code; not public API).
// ---------------------------------------------------------------------------

/// Extract and deserialize a struct field (derive helper).
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => {
            T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {}", e)))
        }
        None => T::deserialize_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

/// Extract a struct field, falling back to `default` when absent (derive
/// helper for `#[serde(default = "...")]` / `#[serde(default)]`).
#[doc(hidden)]
pub fn __field_or_else<T: Deserialize>(
    obj: &Map,
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => {
            T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {}", e)))
        }
        None => Ok(default()),
    }
}

// ---------------------------------------------------------------------------
// Blanket implementations for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => return Err(Error::expected("integer", other)),
                };
                let out = match *n {
                    Number::PosInt(u) => <$t>::try_from(u).ok(),
                    Number::NegInt(i) => <$t>::try_from(i).ok(),
                    Number::Float(f) if f.fract() == 0.0 => {
                        if f >= 0.0 {
                            <$t>::try_from(f as u64).ok()
                        } else {
                            <$t>::try_from(f as i64).ok()
                        }
                    }
                    Number::Float(_) => None,
                };
                out.ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain the `'static` lifetime. Acceptable for
    /// the workspace's use (small static model-metadata tables round-
    /// tripped in tests); do not deserialize unbounded streams into
    /// `&'static str` fields.
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(Into::into)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                Ok(($($t::deserialize_value(
                    a.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).serialize_value(), 3u32.serialize_value());
        assert_eq!(Option::<u32>::None.serialize_value(), Value::Null);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::Null);
        m.insert("a", Value::Bool(true));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn int_range_checks() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::deserialize_value(&v).is_err());
        assert_eq!(u16::deserialize_value(&v).unwrap(), 300);
    }
}
