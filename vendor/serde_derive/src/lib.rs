//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the shapes this workspace actually uses:
//!
//! * named-field structs (no generics), honoring
//!   `#[serde(default)]` and `#[serde(default = "path")]` on fields;
//! * unit-variant enums (serialized as the variant-name string).
//!
//! Anything else produces a compile error naming the limitation, so an
//! accidental new shape fails loudly instead of serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derive the `Serialize` half.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(Shape::Struct { name, fields }) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert({:?}, ::serde::Serialize::serialize_value(&self.{}));\n",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Ok(Shape::UnitEnum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Err(e) => error(&e),
    }
}

/// Derive the `Deserialize` half.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(Shape::Struct { name, fields }) => {
            let extracts: String = fields
                .iter()
                .map(|f| match &f.default {
                    None => format!("{}: ::serde::__field(obj, {:?})?,\n", f.name, f.name),
                    Some(None) => format!(
                        "{}: ::serde::__field_or_else(obj, {:?}, ::core::default::Default::default)?,\n",
                        f.name, f.name
                    ),
                    Some(Some(path)) => format!(
                        "{}: ::serde::__field_or_else(obj, {:?}, {})?,\n",
                        f.name, f.name, path
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", v))?;\n\
                         Ok({name} {{ {extracts} }})\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Ok(Shape::UnitEnum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({v:?}) => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let expected = variants.join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             _ => ::core::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown {name} variant {{v:?}}, expected one of: {expected}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parse the deriving item into one of the supported shapes.
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as #[doc = ...]).
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            _ => break,
        }
    }

    // Skip visibility.
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }

    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    match it.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive(Serialize/Deserialize) stand-in does not support generics on `{name}`"
            ));
        }
        _ => {}
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(_)) => {
            return Err(format!(
                "derive stand-in supports only named-field structs; `{name}` is a tuple struct"
            ));
        }
        other => return Err(format!("expected {{...}} body for `{name}`, got {other:?}")),
    };

    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_fields(body)?,
        }),
        "enum" => Ok(Shape::UnitEnum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Attributes; look for #[serde(default)] / #[serde(default = "path")].
        let mut default = None;
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    let Some(TokenTree::Group(g)) = it.next() else {
                        return Err("malformed attribute".into());
                    };
                    if let Some(d) = parse_serde_default(&g.stream())? {
                        default = Some(d);
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        match it.peek() {
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                it.next();
                if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            _ => {}
        }
        // Field name (or end of stream).
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a `,` at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    it.next();
                    break;
                }
                Some(_) => {
                    it.next();
                }
            }
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip variant attributes and doc comments.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next(); // the [...] group
                }
                _ => break,
            }
        }
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected enum variant, got {other:?}")),
        };
        match it.peek() {
            Some(TokenTree::Group(g))
                if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Brace) =>
            {
                return Err(format!(
                    "derive stand-in supports only unit enum variants; `{name}` carries data"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "derive stand-in does not support explicit discriminants (variant `{name}`)"
                ));
            }
            _ => {}
        }
        match it.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, got {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

/// If `attr` is a `serde(...)` attribute containing `default`, return the
/// parsed default spec.
fn parse_serde_default(attr: &TokenStream) -> Result<Option<Option<String>>, String> {
    let mut it = attr.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Ok(None), // other attribute (doc, derive, ...)
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return Ok(None);
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        if let TokenTree::Ident(i) = &tok {
            if i.to_string() == "default" {
                match inner.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        inner.next();
                        match inner.next() {
                            Some(TokenTree::Literal(l)) => {
                                let s = l.to_string();
                                let path = s.trim_matches('"').to_string();
                                return Ok(Some(Some(path)));
                            }
                            other => {
                                return Err(format!(
                                    "serde(default = ...) expects a string literal, got {other:?}"
                                ));
                            }
                        }
                    }
                    _ => return Ok(Some(None)),
                }
            }
        }
        // Any other serde attribute (rename, skip, ...) is unsupported.
        if let TokenTree::Ident(i) = &tok {
            let known = ["default"];
            if !known.contains(&i.to_string().as_str()) {
                return Err(format!(
                    "unsupported serde attribute `{i}` (stand-in understands only `default`)"
                ));
            }
        }
    }
    Ok(None)
}
