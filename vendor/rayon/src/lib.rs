//! Offline stand-in for `rayon` — backed by a **real** thread pool.
//!
//! The original stub delegated `par_iter()` / `into_par_iter()` to the
//! ordinary sequential iterators, which silently made every "parallel"
//! GA search, sweep, and bench harness in the workspace single-threaded.
//! This version executes the expensive adaptors (`map`, `for_each`) on a
//! chunked fork-join executor over `std::thread::scope`, while keeping
//! the results **bit-identical** to the sequential fallback:
//!
//! * **Index-ordered collection.** Items are split into contiguous
//!   chunks; workers pull chunks from a shared queue (coarse-grained
//!   work stealing, so an expensive chunk does not serialize the rest),
//!   and the mapped chunks are stitched back together in index order.
//!   The output `Vec` is therefore exactly what the sequential `map`
//!   would have produced, for any worker count.
//! * **Caller-side determinism.** Nothing here consumes randomness or
//!   wall-clock time; seeded RNGs stay on the caller's thread (the GA
//!   profiles its population in parallel but breeds sequentially).
//! * **`SPLIT_THREADS`.** Worker count comes from the `SPLIT_THREADS`
//!   environment variable, defaulting to the machine's available
//!   parallelism; `SPLIT_THREADS=1` reproduces the old sequential
//!   behavior exactly (no threads are spawned at all).
//!
//! After a parallel `map`/`for_each` the returned [`ParIter`] is an
//! ordinary [`Iterator`] over the already-materialized results, so every
//! std adaptor (`collect`, `sum`, `max_by`, `filter`, ...) keeps working
//! unchanged — reductions run sequentially over index-ordered items,
//! which is what makes `max_by` tie-breaks identical across thread
//! counts.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Worker-count policy.
// ---------------------------------------------------------------------------

static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is a pool worker, so nested parallel
    /// adaptors degrade to sequential instead of spawning threads
    /// quadratically.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The worker count parallel adaptors will use on this thread right now:
/// the innermost [`with_threads`] override if present, else
/// `SPLIT_THREADS`, else the machine's available parallelism.
pub fn current_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("SPLIT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Run `f` with the worker count pinned to `n` on this thread (nestable;
/// restored on exit, including on panic). This is how benches and the
/// determinism audits compare `SPLIT_THREADS=1` against `=N` runs inside
/// one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

// ---------------------------------------------------------------------------
// The executor: ordered chunked fork-join.
// ---------------------------------------------------------------------------

/// Map `f` over `items` using the current worker count, returning results
/// in item order (bit-identical to `items.into_iter().map(f).collect()`).
fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = if IN_POOL.with(Cell::get) {
        // Already on a worker thread: the outer adaptor owns the pool.
        1
    } else {
        current_threads()
    };
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into ~4 chunks per worker so the shared queue load-balances
    // uneven per-item cost without per-item locking.
    let chunk_len = n.div_ceil(workers * 4).max(1);
    let mut queue: Vec<(usize, Vec<T>)> = Vec::new();
    let mut it = items.into_iter();
    let mut start = 0usize;
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        start += chunk.len();
        queue.push((start - chunk.len(), chunk));
    }
    // Workers pop from the back; reverse so chunk 0 is claimed first.
    queue.reverse();

    let queue = Mutex::new(queue);
    let done = Mutex::new(Vec::<(usize, Vec<U>)>::with_capacity(workers * 4));

    let work = |queue: &Mutex<Vec<(usize, Vec<T>)>>, done: &Mutex<Vec<(usize, Vec<U>)>>| {
        IN_POOL.with(|c| c.set(true));
        loop {
            let job = queue.lock().unwrap().pop();
            let Some((at, chunk)) = job else { break };
            let mapped: Vec<U> = chunk.into_iter().map(&f).collect();
            done.lock().unwrap().push((at, mapped));
        }
        IN_POOL.with(|c| c.set(false));
    };

    std::thread::scope(|s| {
        for _ in 0..workers - 1 {
            s.spawn(|| work(&queue, &done));
        }
        // The caller's thread participates too; IN_POOL is restored below
        // because `work` resets it (the caller is not a pool worker once
        // the scope ends).
        work(&queue, &done);
    });

    let mut chunks = done.into_inner().unwrap();
    chunks.sort_unstable_by_key(|&(at, _)| at);
    let mut out = Vec::with_capacity(n);
    for (_, mapped) in chunks {
        out.extend(mapped);
    }
    out
}

// ---------------------------------------------------------------------------
// The iterator type.
// ---------------------------------------------------------------------------

/// A "parallel" iterator: parallel at the inherent [`ParIter::map`] /
/// [`ParIter::for_each`] adaptors, an ordinary ordered [`Iterator`]
/// everywhere else.
#[derive(Debug)]
pub struct ParIter<T> {
    items: std::vec::IntoIter<T>,
}

impl<T> ParIter<T> {
    fn from_vec(v: Vec<T>) -> Self {
        Self {
            items: v.into_iter(),
        }
    }

    /// Parallel map with index-ordered results. This is the adaptor that
    /// carries all the expensive work in this workspace (candidate
    /// profiling, sweeps, per-policy simulations).
    #[allow(clippy::should_implement_trait)] // deliberate: shadows Iterator::map with a parallel one
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter::from_vec(run_ordered(self.items.collect(), f))
    }

    /// Parallel for-each (used with `par_iter_mut`). Side effects on
    /// distinct items race only through the caller's own shared state.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        run_ordered(self.items.collect(), f);
    }

    /// Remaining (already materialized) item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items remain.
    pub fn is_empty(&self) -> bool {
        self.items.len() == 0
    }
}

impl<T> Iterator for ParIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.items.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl<T> ExactSizeIterator for ParIter<T> {}

/// The conventional glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::ParIter;

    /// By-value conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type yielded.
        type Item;
        /// Convert into the parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter::from_vec(self.into_iter().collect())
        }
    }

    /// By-reference conversion, mirroring `par_iter()` on `Vec`/slices.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded (typically `&'data T`).
        type Item: 'data;
        /// Iterate by shared reference.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter::from_vec(self.into_iter().collect())
        }
    }

    /// By-mutable-reference conversion, mirroring `par_iter_mut()`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type yielded (typically `&'data mut T`).
        type Item: 'data;
        /// Iterate by exclusive reference.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
            ParIter::from_vec(self.into_iter().collect())
        }
    }
}

/// Run two closures in parallel (when more than one worker is configured)
/// and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 || IN_POOL.with(Cell::get) {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join: right closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let total: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }

    #[test]
    fn results_are_index_ordered_at_any_thread_count() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5A5).collect();
        for threads in [1, 2, 3, 8, 17] {
            let par: Vec<u64> = super::with_threads(threads, || {
                items
                    .par_iter()
                    .map(|&x| x.wrapping_mul(x) ^ 0xA5A5)
                    .collect()
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn reductions_match_sequential_tie_breaks() {
        // max_by over equal keys must pick the same element the sequential
        // iterator picks (the last maximal one) at every thread count.
        let items: Vec<(u32, usize)> = (0..257usize).map(|i| (i as u32 % 7, i)).collect();
        let seq = items.iter().copied().max_by_key(|&(k, _)| k);
        for threads in [1, 4, 9] {
            let par = super::with_threads(threads, || {
                items.par_iter().map(|&p| p).max_by_key(|&(k, _)| k)
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn pool_really_runs_workers_concurrently() {
        // 4 items, 4 workers, chunk size 1: each worker claims one chunk
        // and blocks on a barrier of 4 — the test can only pass (and not
        // hang) if four threads are truly running at once.
        let barrier = Barrier::new(4);
        let ids = Mutex::new(std::collections::HashSet::new());
        super::with_threads(4, || {
            (0..4usize)
                .into_par_iter()
                .map(|i| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    barrier.wait();
                    i
                })
                .for_each(drop);
        });
        assert_eq!(ids.lock().unwrap().len(), 4);
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        // A par map inside a par map must not spawn workers², and must
        // still produce ordered results.
        let out: Vec<Vec<usize>> = super::with_threads(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    (0..8usize)
                        .into_par_iter()
                        .map(move |j| i * 8 + j)
                        .collect()
                })
                .collect()
        });
        for (i, row) in out.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, i * 8 + j);
            }
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = super::current_threads();
        super::with_threads(3, || {
            assert_eq!(super::current_threads(), 3);
            super::with_threads(5, || assert_eq!(super::current_threads(), 5));
            assert_eq!(super::current_threads(), 3);
        });
        assert_eq!(super::current_threads(), outer);
    }

    #[test]
    fn single_thread_spawns_nothing() {
        // With one worker the map must run inline on the caller's thread.
        let caller = std::thread::current().id();
        super::with_threads(1, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    assert_eq!(std::thread::current().id(), caller);
                    i
                })
                .for_each(drop);
        });
    }

    #[test]
    fn parallel_for_each_sees_every_item() {
        let hits = AtomicUsize::new(0);
        super::with_threads(4, || {
            (0..1000usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
