//! Offline stand-in for `rayon`.
//!
//! Sequential fallback: `par_iter()` / `into_par_iter()` delegate to the
//! ordinary iterators, so every adaptor (`map`, `filter`, `collect`, ...)
//! is just the std `Iterator` machinery. Results are bit-identical to the
//! parallel versions for the deterministic pipelines this workspace runs;
//! only wall-clock parallelism is lost.

/// The conventional glob import, mirroring `rayon::prelude`.
pub mod prelude {
    /// By-value conversion into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        /// Item type yielded.
        type Item;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into the iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// By-reference conversion, mirroring `par_iter()` on `Vec`/slices.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded (typically `&'data T`).
        type Item: 'data;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate by shared reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// By-mutable-reference conversion, mirroring `par_iter_mut()`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type yielded (typically `&'data mut T`).
        type Item: 'data;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate by exclusive reference.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Run two closures "in parallel" (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let total: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
