//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, Condvar}` with parking_lot's API shape:
//! `lock()` returns the guard directly (poisoning is ignored, matching
//! parking_lot's no-poison contract) and `Condvar::wait` takes
//! `&mut MutexGuard`. The guard internally holds an
//! `Option<std::sync::MutexGuard>` so `wait` can move the std guard out,
//! block, and put the reacquired guard back.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Some` except transiently inside `Condvar::wait*`.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking; a poisoned lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// A read-write lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
