//! The threaded online system end to end (paper §4, Figure 4).
//!
//! Starts the real multi-threaded SPLIT server (responder, token
//! scheduler, token assigner) over the paper deployment, fires concurrent
//! client traffic from several "camera" threads, and reports measured
//! response ratios plus the scheduler's preemption-decision latency — the
//! microsecond-scale claim of §3.4, measured on this machine.
//!
//! Run with: `cargo run --release --example edge_server`

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::split_runtime::{Server, ServerConfig};
use std::time::Duration;

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    // 20x compression keeps sleep-quantization small vs block times.
    let server = Server::start(
        deployment,
        ServerConfig {
            alpha: 4.0,
            elastic: None,
            compression: 20.0,
        },
    );

    let cameras = 4;
    let per_camera = 25;
    let mut collectors = Vec::new();
    for cam in 0..cameras {
        let client = server.client();
        collectors.push(std::thread::spawn(move || {
            let mut replies = Vec::new();
            let models = ["yolov2", "googlenet", "resnet50", "vgg19", "gpt2"];
            for i in 0..per_camera {
                let model = models[(cam * 7 + i * 3) % models.len()];
                replies.push(client.infer(model));
                std::thread::sleep(Duration::from_micros(7_000));
            }
            replies
                .into_iter()
                .map(|rx| rx.recv().expect("server replies"))
                .collect::<Vec<_>>()
        }));
    }

    let mut all = Vec::new();
    for c in collectors {
        all.extend(c.join().expect("camera thread"));
    }

    println!(
        "served {} requests from {} concurrent cameras",
        all.len(),
        cameras
    );
    println!(
        "\n{:12} {:>6} {:>12} {:>12} {:>10}",
        "model", "count", "mean RR", "worst RR", "blocks"
    );
    for model in experiment::PAPER_MODEL_NAMES {
        let rs: Vec<&split_repro::split_runtime::InferenceReply> =
            all.iter().filter(|r| r.model == model).collect();
        if rs.is_empty() {
            continue;
        }
        let mean_rr = rs.iter().map(|r| r.response_ratio()).sum::<f64>() / rs.len() as f64;
        let worst_rr = rs.iter().map(|r| r.response_ratio()).fold(0.0f64, f64::max);
        let blocks = rs.iter().map(|r| r.blocks_run).max().unwrap();
        println!(
            "{:12} {:>6} {:>12.2} {:>12.2} {:>10}",
            model,
            rs.len(),
            mean_rr,
            worst_rr,
            blocks
        );
    }

    let report = server.shutdown();
    println!(
        "\npreemption decisions: {} total, mean {:.1} µs, p50 {:.1} µs, p99 {:.1} µs, worst {:.1} µs",
        report.decisions,
        report.mean_decision_ns / 1e3,
        report.p50_decision_ns as f64 / 1e3,
        report.p99_decision_ns as f64 / 1e3,
        report.max_decision_ns as f64 / 1e3
    );
    println!(
        "lifecycle recording: {} events, invariant violations: {}",
        report.recorder.len(),
        report.recorder.validate().len()
    );
    println!("(§3.4's claim: near-optimal preemption at microsecond scale)");
}
