//! Capacity planning: how hard can this device be driven before QoS
//! collapses, and what happens when the deployment outgrows device
//! memory?
//!
//! Part 1 sweeps the Poisson arrival interval λ well past Table 2's range
//! and reports each policy's violation rate — locating the knee where the
//! queue becomes unstable (the paper's footnote 4: "shorter intervals
//! result in a growing request queue").
//!
//! Part 2 deploys all eleven §3.1 models on a memory-constrained device:
//! weights no longer all fit, so requests pay ClockWork-style cold-start
//! weight loads. The LRU residency model quantifies the tail-latency
//! cliff.
//!
//! Run with: `cargo run --release --example capacity_planning`

use split_repro::experiment;
use split_repro::gpu_sim::{block_time_us, DeviceConfig, ModelMemory};
use split_repro::model_zoo::profiling_models;
use split_repro::qos_metrics::{percentile, violation_rate};
use split_repro::sched::{simulate, Policy};
use split_repro::workload::{RequestTrace, Scenario};

fn main() {
    part1_lambda_sweep();
    part2_memory_pressure();
}

fn part1_lambda_sweep() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);

    println!("== Part 1: violation rate (α = 4) vs arrival interval λ\n");
    print!("{:>8}", "λ (ms)");
    for p in Policy::all_default() {
        print!(" {:>10}", p.name());
    }
    println!();

    for lambda in [200.0, 160.0, 120.0, 80.0, 60.0, 50.0, 40.0, 35.0] {
        let mut sc = Scenario::table2(1);
        sc.lambda_ms = lambda;
        let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);
        print!("{lambda:>8.0}");
        for p in Policy::all_default() {
            let r = simulate(&p, &trace.arrivals, deployment.table());
            let v = violation_rate(&r.outcomes(), 4.0);
            print!(" {:>9.1}%", 100.0 * v);
        }
        println!();
    }
    println!("\nThe knee: mean service time is ~28 ms plus splitting overhead, so");
    println!("below λ ≈ 35-40 ms every discipline drowns; down to ~50 ms SPLIT");
    println!("degrades the most gracefully.\n");
}

fn part2_memory_pressure() {
    let dev = DeviceConfig::jetson_nano();
    println!("== Part 2: eleven-model deployment under memory pressure\n");

    // Isolated exec + weight bytes for the full §3.1 zoo.
    let models: Vec<(String, f64, u64)> = profiling_models()
        .iter()
        .map(|id| {
            let g = id.build_calibrated(&dev);
            (
                g.name.clone(),
                block_time_us(&g, &dev),
                g.total_weight_bytes(),
            )
        })
        .collect();
    let total_mb: u64 = models.iter().map(|m| m.2).sum::<u64>() / (1024 * 1024);
    println!("total weights across 11 models: {total_mb} MB (fp32)");

    let mut sc = Scenario::table2(3);
    sc.requests = 2000;
    let names: Vec<&str> = models.iter().map(|m| m.0.as_str()).collect();
    let trace = RequestTrace::generate(sc, &names);

    for budget_mb in [2048u64, 1200, 1024, 768] {
        let mut mem = ModelMemory::new(budget_mb * 1024 * 1024);
        // Sequential FCFS replay with cold-start loads, ClockWork style.
        let mut busy_until = 0.0f64;
        let mut e2es = Vec::with_capacity(trace.arrivals.len());
        for a in &trace.arrivals {
            let (_, exec, weights) = models.iter().find(|m| m.0 == a.model).expect("deployed");
            let load = mem.ensure_resident(&a.model, *weights, &dev).load_us;
            let start = busy_until.max(a.arrival_us);
            busy_until = start + load + exec;
            e2es.push(busy_until - a.arrival_us);
        }
        let (hits, misses) = mem.stats();
        println!(
            "  budget {budget_mb:>5} MB: hit rate {:>5.1}%, p50 {:>7.1} ms, p99 {:>8.1} ms",
            100.0 * hits as f64 / (hits + misses) as f64,
            percentile(&e2es, 0.50).unwrap() / 1e3,
            percentile(&e2es, 0.99).unwrap() / 1e3,
        );
    }
    println!("\nBelow the working-set size the LRU thrashes and weight transfers");
    println!("dominate — the regime ClockWork's managed loading targets, and the");
    println!("reason SPLIT (like the paper) assumes a resident deployment.");
}
