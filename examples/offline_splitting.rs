//! The offline stage in detail: watching the genetic algorithm converge.
//!
//! Runs the observation-guided GA on ResNet-50 and VGG-19 for 2/3/4-block
//! splits (the paper's Figure 5 + Table 3 setting), printing the
//! per-generation best standard deviation and overhead, the final cut
//! points, and the candidate-count argument from §2.2 that rules out
//! exhaustive search.
//!
//! Run with: `cargo run --release --example offline_splitting`

use split_repro::gpu_sim::DeviceConfig;
use split_repro::model_zoo::ModelId;
use split_repro::split_core::{count_candidates, evolve, GaConfig};

fn main() {
    let dev = DeviceConfig::jetson_nano();

    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        println!(
            "== {} ({} operators, {:.2} ms vanilla)",
            g.name,
            g.op_count(),
            id.info().latency_ms
        );
        for blocks in [2usize, 3, 4] {
            let candidates = count_candidates(g.op_count(), blocks);
            let out = evolve(&g, &dev, &GaConfig::new(blocks));
            let profiled = out.history.last().unwrap().candidates_profiled;
            println!(
                "\n  {blocks}-block split: {candidates} candidates exist; GA profiled {profiled} \
                 ({:.2}% of the space) over {} generations",
                100.0 * profiled as f64 / candidates as f64,
                out.generations_run
            );
            println!("  gen |   σ (ms) | overhead");
            for s in out.history.iter().step_by(3) {
                println!(
                    "  {:>3} | {:>8.3} | {:>7.1}%",
                    s.generation,
                    s.best_std_us / 1e3,
                    100.0 * s.best_overhead
                );
            }
            let p = &out.best_profile;
            println!(
                "  best: cuts {:?} → blocks {} | σ {:.3} ms | overhead {:.1}% | range {:.2}%",
                out.best.cuts(),
                p.block_times_us
                    .iter()
                    .map(|b| format!("{:.1}ms", b / 1e3))
                    .collect::<Vec<_>>()
                    .join(" + "),
                p.std_us / 1e3,
                100.0 * p.overhead_ratio,
                p.range_pct
            );
        }
        println!();
    }
    println!("Compare with paper Table 3: σ grows with the number of blocks");
    println!("(discrete operator times make perfectly even k-way splits harder)");
    println!("and the optimal block count balances Eq. 1 waiting against overhead.");
}
