//! Autonomous-driving scenario (the paper's §1 motivation).
//!
//! The on-board processor continuously runs person *detection* (a long
//! request); as pedestrians approach, bursts of *tracking* and *pose
//! extraction* (short requests) fire and must answer quickly to assess
//! route safety. This example builds that weighted, bursty workload and
//! compares how long a pose request waits under each policy.
//!
//! Run with: `cargo run --release --example autonomous_driving`

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::qos_metrics::percentile;
use split_repro::sched::{simulate, Policy};
use split_repro::workload::{Arrival, PoissonGen, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);

    // Continuous detection on VGG19 every ~90 ms, plus pedestrian bursts:
    // three quick shorts (tracking = yolov2, pose = googlenet, intent =
    // gpt2) arriving within a few ms of each other.
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut id = 0u64;
    let horizon_us = 30_000_000.0; // 30 s drive

    let mut t = 0.0;
    while t < horizon_us {
        arrivals.push(Arrival {
            id,
            model: "vgg19".into(),
            arrival_us: t,
        });
        id += 1;
        t += 90_000.0;
    }
    // Pedestrian events: Poisson with mean 600 ms.
    let mut events = PoissonGen::new(600_000.0, Scenario::table2(1).seed());
    loop {
        let e = events.next_arrival_us();
        if e >= horizon_us {
            break;
        }
        for (k, model) in ["yolov2", "googlenet", "gpt2"].iter().enumerate() {
            arrivals.push(Arrival {
                id,
                model: (*model).into(),
                arrival_us: e + k as f64 * 2_000.0,
            });
            id += 1;
        }
    }
    arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
    for (i, a) in arrivals.iter_mut().enumerate() {
        a.id = i as u64;
    }

    println!(
        "driving workload: {} requests over {:.0} s ({} detection frames)",
        arrivals.len(),
        horizon_us / 1e6,
        arrivals.iter().filter(|a| a.model == "vgg19").count()
    );
    println!(
        "\n{:16} {:>12} {:>12} {:>12} {:>14}",
        "policy", "pose p50", "pose p99", "pose worst", "detector p99"
    );

    for policy in Policy::all_default() {
        let r = simulate(&policy, &arrivals, deployment.table());
        let pose: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| &*c.model != "vgg19")
            .map(|c| c.e2e_us() / 1e3)
            .collect();
        let detect: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| &*c.model == "vgg19")
            .map(|c| c.e2e_us() / 1e3)
            .collect();
        let worst = pose.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{:16} {:>9.1} ms {:>9.1} ms {:>9.1} ms {:>11.1} ms",
            policy.name(),
            percentile(&pose, 0.50).unwrap(),
            percentile(&pose, 0.99).unwrap(),
            worst,
            percentile(&detect, 0.99).unwrap(),
        );
    }
    println!("\nSPLIT bounds the pose-request tail at one detector *block*,");
    println!("not one whole detector pass — the difference between braking");
    println!("decisions made in tens versus hundreds of milliseconds.");
}
