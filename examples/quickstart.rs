//! Quickstart: the whole SPLIT pipeline in one file.
//!
//! 1. Build the paper's five benchmark models, calibrated to Table 1.
//! 2. Run the offline genetic-algorithm splitting stage on the long ones.
//! 3. Serve a Poisson scenario with SPLIT and the three baselines.
//! 4. Print the QoS verdict: latency violation rate and per-model jitter.
//!
//! Run with: `cargo run --release --example quickstart`

use split_repro::experiment::{self, PAPER_MODEL_NAMES};
use split_repro::gpu_sim::DeviceConfig;
use split_repro::qos_metrics::{per_model_std, violation_rate};
use split_repro::sched::Policy;
use split_repro::workload::Scenario;

fn main() {
    let dev = DeviceConfig::jetson_nano();

    println!("== offline stage: calibrate + GA-split the long models");
    let deployment = experiment::paper_deployment(&dev);
    for name in PAPER_MODEL_NAMES {
        let m = deployment.table().get(name);
        println!(
            "  {:10} exec {:6.2} ms, {} block(s){}",
            m.name,
            m.exec_us / 1e3,
            m.blocks_us.len(),
            if m.blocks_us.len() > 1 {
                format!(
                    " ({})",
                    m.blocks_us
                        .iter()
                        .map(|b| format!("{:.1}ms", b / 1e3))
                        .collect::<Vec<_>>()
                        .join(" + ")
                )
            } else {
                String::new()
            }
        );
    }

    let scenario = Scenario::table2(3);
    println!(
        "\n== online stage: scenario {} (λ = {} ms, {} requests)",
        scenario.index, scenario.lambda_ms, scenario.requests
    );
    println!(
        "{:16} {:>10} {:>10} {:>14}",
        "policy", "viol@α=4", "viol@α=8", "short jitter"
    );
    for policy in Policy::all_default() {
        let outcomes = experiment::scenario_outcomes(&policy, scenario, &deployment);
        let rows = per_model_std(&outcomes);
        let shorts = experiment::short_model_names();
        let short_std = rows
            .iter()
            .filter(|r| shorts.contains(&r.model.as_str()))
            .map(|r| r.std_us)
            .sum::<f64>()
            / shorts.len() as f64;
        println!(
            "{:16} {:>9.1}% {:>9.1}% {:>11.2} ms",
            policy.name(),
            100.0 * violation_rate(&outcomes, 4.0),
            100.0 * violation_rate(&outcomes, 8.0),
            short_std / 1e3
        );
    }
    println!("\nSPLIT should show the lowest violation rate and the smallest");
    println!("short-model jitter — the paper's headline result (Figures 6-7).");
}
