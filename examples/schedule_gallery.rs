//! Schedule gallery: the paper's Figure 1 and Figure 3, as ASCII Gantt
//! charts from real simulator traces.
//!
//! Figure 1: a short request A arriving just after a long request B, under
//! Stream-Parallel, Runtime-Aware alignment, sequential execution, uneven
//! splitting, and SPLIT's even splitting.
//!
//! Figure 3: partial versus full preemption — why all blocks of the
//! preempting request run together.
//!
//! Run with: `cargo run --release --example schedule_gallery`

use split_repro::sched::policy::{SplitCfg, StreamParallelCfg};
use split_repro::sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_repro::workload::Arrival;

fn main() {
    // Figure 1's cast: long request B (60 ms), short request A (10 ms)
    // arriving 5 ms later.
    let arrivals = vec![
        Arrival {
            id: 0,
            model: "B-long".into(),
            arrival_us: 0.0,
        },
        Arrival {
            id: 1,
            model: "A-short".into(),
            arrival_us: 5_000.0,
        },
    ];

    let table_with = |blocks: Vec<f64>| {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::split("B-long", 0, 60_000.0, blocks));
        t.insert(ModelRuntime::vanilla("A-short", 1, 10_000.0));
        t
    };

    println!("=== Figure 1: one short request behind one long request ===\n");

    let lanes: Vec<(&str, Policy, ModelTable)> = vec![
        (
            "Stream-Parallel (contend on every kernel)",
            Policy::StreamParallel(StreamParallelCfg::default()),
            table_with(vec![60_000.0]),
        ),
        (
            "Runtime-Aware (aligned: A welded to B)",
            Policy::Rta(Default::default()),
            table_with(vec![60_000.0]),
        ),
        (
            "Sequential (ClockWork: A waits out B)",
            Policy::ClockWork,
            table_with(vec![60_000.0]),
        ),
        (
            "Uneven split (B = 57 + 5.5 ms blocks)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            table_with(vec![57_000.0, 5_500.0]),
        ),
        (
            "SPLIT even split (B = 3 x 21 ms blocks)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            table_with(vec![21_000.0, 21_000.0, 21_000.0]),
        ),
    ];

    for (title, policy, table) in lanes {
        let r = simulate(&policy, &arrivals, &table);
        let a = r.completions.iter().find(|c| c.id == 1).unwrap();
        let b = r.completions.iter().find(|c| c.id == 0).unwrap();
        println!(
            "--- {title}\n    A: e2e {:>6.1} ms (RR {:>4.1})   B: e2e {:>6.1} ms (RR {:>4.1})",
            a.e2e_us() / 1e3,
            a.response_ratio(),
            b.e2e_us() / 1e3,
            b.response_ratio()
        );
        print!("{}", r.trace.render_ascii(64));
        println!();
    }

    println!("=== Figure 3: partial vs full preemption ===\n");
    // Request A (3 blocks of 10 ms) is preempted by request B (2 blocks of
    // 8 ms). Full preemption (what SPLIT does): B's blocks run together.
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::split("A", 0, 28_000.0, vec![10_000.0; 3]));
    t.insert(ModelRuntime::split(
        "B",
        1,
        15_000.0,
        vec![8_000.0, 8_000.0],
    ));
    let arrivals = vec![
        Arrival {
            id: 0,
            model: "A".into(),
            arrival_us: 0.0,
        },
        Arrival {
            id: 1,
            model: "B".into(),
            arrival_us: 2_000.0,
        },
    ];
    let r = simulate(
        &Policy::Split(SplitCfg {
            alpha: 4.0,
            elastic: None,
        }),
        &arrivals,
        &t,
    );
    println!("full preemption (SPLIT): B's two blocks run back to back");
    print!("{}", r.trace.render_ascii(64));
    let b = r.completions.iter().find(|c| c.id == 1).unwrap();
    println!("B total latency: {:.1} ms\n", b.e2e_us() / 1e3);
    println!("(partial preemption would interleave A's blocks between B's,");
    println!("stretching B's last block far to the right — see §3.4, Fig. 3a)");
}
