//! End-to-end tests of the `split-cli` binary: the full offline→file→
//! online workflow a downstream user would run.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    let exe = env!("CARGO_BIN_EXE_split-cli");
    Command::new(exe)
        .args(args)
        .output()
        .expect("run split-cli")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn zoo_lists_all_eleven_models() {
    let out = cli(&["zoo"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for model in [
        "yolov2",
        "googlenet",
        "resnet50",
        "vgg19",
        "gpt2",
        "densenet121",
    ] {
        assert!(text.contains(model), "missing {model} in:\n{text}");
    }
}

#[test]
fn plan_reports_ga_result() {
    let out = cli(&["plan", "vgg19", "--blocks", "2", "--seed", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("cuts:"));
    assert!(text.contains("overhead"));
}

#[test]
fn plan_unknown_model_fails_with_listing() {
    let out = cli(&["plan", "resnet51"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown model"));
    assert!(err.contains("resnet50"), "should list the valid names");
}

#[test]
fn plan_all_then_simulate_from_file() {
    let dir = std::env::temp_dir().join("split_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let plans: PathBuf = dir.join("plans.json");
    let _ = std::fs::remove_file(&plans);

    let out = cli(&["plan-all", "--out", plans.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(plans.exists());

    let out = cli(&[
        "simulate",
        "--scenario",
        "2",
        "--policy",
        "split",
        "--plans",
        plans.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("1000 requests"));
    assert!(text.contains("violation rate"));
}

#[test]
fn simulate_validates_inputs() {
    assert!(!cli(&["simulate", "--scenario", "9"]).status.success());
    assert!(!cli(&["simulate", "--policy", "fifo"]).status.success());
}

#[test]
fn dot_emits_graphviz() {
    let out = cli(&["dot", "vgg19"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("conv"));
}

#[test]
fn analyze_is_clean_and_exits_zero() {
    let out = cli(&["analyze", "--deny-warnings", "--requests", "60"]);
    assert!(
        out.status.success(),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("plans: clean"), "{err}");
    assert!(err.contains("schedules: clean"), "{err}");
    assert!(err.contains("determinism: clean"), "{err}");
    assert!(err.contains("attribution: clean"), "{err}");
    // Per-machine model-checking counts belong in the job log.
    assert!(err.contains("model forensics.flightring.seqlock:"), "{err}");
    assert!(err.contains("sleep-set prunes"), "{err}");
}

#[test]
fn analyze_json_emits_diagnostics_and_machine_counts() {
    let out = cli(&["analyze", "--json", "--requests", "60"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"diagnostics\": []"), "{text}");
    for needle in [
        "\"machines\"",
        "\"profiler.cache\"",
        "\"forensics.flightring.seqlock\"",
        "\"executions\"",
        "\"transitions\"",
        "\"sleep_prunes\"",
        "\"budget_exceeded\": false",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn analyze_only_runs_a_single_machine() {
    let out = cli(&["analyze", "--only", "sa205", "--deny-warnings"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("analyzed 0 plan(s), 0 schedule(s)"), "{err}");
    assert!(err.contains("model forensics.flightring.seqlock:"), "{err}");
    assert!(!err.contains("model telemetry.counter:"), "{err}");

    let out = cli(&["analyze", "--only", "SA999x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --only"));
}

#[test]
fn analyze_budget_gate_fires_sa200() {
    // A one-transition ceiling cannot cover any machine: every model
    // must report SA200 and --deny-warnings must fail the run.
    let out = cli(&[
        "analyze",
        "--only",
        "SA205",
        "--mc-budget",
        "1",
        "--deny-warnings",
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("SA200"), "{text}");
    assert!(text.contains("budget exhausted"), "{text}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("[BUDGET EXCEEDED]"),
        "the job log must flag the exploded machine"
    );
}

#[test]
fn analyze_rejects_unknown_options() {
    let out = cli(&["analyze", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn monitor_renders_dashboard_frames_and_prometheus() {
    let dir = std::env::temp_dir().join("split_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace: PathBuf = dir.join("monitor.trace.json");
    let prom: PathBuf = dir.join("monitor.prom");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&prom);

    // Simulate once, exporting a Perfetto trace...
    let out = cli(&[
        "simulate",
        "--scenario",
        "3",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // ...then replay it through the live dashboard.
    let out = cli(&[
        "monitor",
        "--replay",
        trace.to_str().unwrap(),
        "--frames",
        "3",
        "--interval",
        "0",
        "--prom",
        prom.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert_eq!(
        text.matches("SPLIT monitor").count(),
        3,
        "one dashboard per frame:\n{text}"
    );
    for needle in [
        "queue depth",
        "utilization",
        "p99 (ms)",
        "burn",
        "violation rate",
        "vgg19",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("# TYPE split_requests_completed counter"));
    assert!(prom_text.contains("split_slo_fast_burn"));
}

#[test]
fn simulate_drift_report_flags_flash_crowd() {
    let dir = std::env::temp_dir().join("split_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report: PathBuf = dir.join("drift.json");
    let _ = std::fs::remove_file(&report);

    let out = cli(&[
        "simulate",
        "--scenario",
        "3",
        "--drift",
        "--drift-report",
        report.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("drift report"), "{text}");
    assert!(text.contains("wrote drift report to"), "{text}");

    let report = split_repro::split_watch::DriftReport::load(&report).expect("load drift report");
    assert!(report.conservation_holds());
    assert!(
        !report.events.is_empty(),
        "the injected flash crowd must fire a change point"
    );
    assert!(!report.windows.is_empty());

    // --drift and --burst are mutually exclusive arrival processes.
    assert!(!cli(&["simulate", "--drift", "--burst"]).status.success());
}

#[test]
fn monitor_json_emits_one_frame_per_line() {
    let dir = std::env::temp_dir().join("split_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace: PathBuf = dir.join("monitor_json.trace.json");
    let _ = std::fs::remove_file(&trace);

    let out = cli(&[
        "simulate",
        "--scenario",
        "3",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli(&[
        "monitor",
        "--replay",
        trace.to_str().unwrap(),
        "--frames",
        "3",
        "--interval",
        "0",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(lines.len(), 3, "one JSON frame per line:\n{text}");
    for line in lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("frame parses as JSON");
        for key in ["now_us", "completed", "drift_windows", "regime_events"] {
            assert!(v.get(key).is_some(), "missing {key} in frame:\n{line}");
        }
    }
}

#[test]
fn monitor_validates_inputs() {
    assert!(!cli(&["monitor", "--scenario", "9"]).status.success());
    assert!(!cli(&["monitor", "--bogus", "1"]).status.success());
}

#[test]
fn fleet_serves_and_verifies_a_small_cluster() {
    let dir = std::env::temp_dir().join("split_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let devices_csv: PathBuf = dir.join("fleet_devices.csv");
    let qos_csv: PathBuf = dir.join("fleet_qos.csv");
    let _ = std::fs::remove_file(&devices_csv);
    let _ = std::fs::remove_file(&qos_csv);

    let out = cli(&[
        "fleet",
        "--devices",
        "4",
        "--requests",
        "5000",
        "--route",
        "p2c",
        // p2c samples lanes uniformly, so on a small heterogeneous fleet
        // the slow lanes saturate well below the fleet-average load the
        // capacity-aware default policy can sustain.
        "--load",
        "0.45",
        "--devices-csv",
        devices_csv.to_str().unwrap(),
        "--qos-csv",
        qos_csv.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("4 device(s)"), "{text}");
    assert!(text.contains("power-of-two-choices"), "{text}");
    assert!(text.contains("5000 request(s): 5000 completed"), "{text}");
    assert!(text.contains("schedule digest: 0x"), "{text}");
    assert!(text.contains("violation rate"), "{text}");
    assert!(
        text.contains("q.peak"),
        "the saturation table is printed:\n{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cluster lint: clean"), "{err}");

    let devices = std::fs::read_to_string(&devices_csv).unwrap();
    assert!(devices.starts_with("device,class,streams,"), "{devices}");
    assert_eq!(devices.lines().count(), 5, "header + one row per device");
    let qos = std::fs::read_to_string(&qos_csv).unwrap();
    assert!(qos.starts_with("alpha,violation_rate\n"), "{qos}");
    assert_eq!(qos.lines().count(), 13, "header + α=1..12");
}

#[test]
fn fleet_explicit_spec_controls_the_fleet() {
    let out = cli(&[
        "fleet",
        "--fleet",
        "jetson*2,nx:1*1",
        "--requests",
        "2000",
        "--replicas",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("3 device(s)"), "{text}");
    assert!(text.contains("3 lane(s)"), "{text}");
}

#[test]
fn fleet_validates_inputs() {
    assert!(!cli(&["fleet", "--fleet", "tpu*4"]).status.success());
    assert!(!cli(&["fleet", "--route", "roundrobin"]).status.success());
    assert!(!cli(&["fleet", "--devices", "0"]).status.success());
    assert!(!cli(&["fleet", "--load", "-1"]).status.success());
    assert!(!cli(&["fleet", "--frobnicate", "1"]).status.success());
}

#[test]
fn analyze_reports_fleet_runs() {
    let out = cli(&[
        "analyze",
        "--only",
        "SA601",
        "--deny-warnings",
        "--requests",
        "120",
    ]);
    assert!(
        out.status.success(),
        "{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("3 fleet run(s)"),
        "one per routing policy: {err}"
    );
    assert!(err.contains("cluster: clean"), "{err}");
}

#[test]
fn no_command_prints_usage() {
    let out = cli(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
