//! Offline → online round trip: GA plans survive serialization (the
//! paper stores blocks as .onnx files plus metadata; we store JSON) and
//! drive both execution paths identically.

use split_repro::dnn_graph::SplitSpec;
use split_repro::experiment;
use split_repro::gpu_sim::{split_block_times_us, DeviceConfig};
use split_repro::model_zoo::ModelId;
use split_repro::sched::policy::SplitCfg;
use split_repro::sched::{simulate, Policy};
use split_repro::split_core::{PlanSet, SplitPlan};
use split_repro::split_runtime::Deployment;
use split_repro::workload::{RequestTrace, Scenario};

#[test]
fn plans_serialize_and_restore_exactly() {
    let dev = DeviceConfig::jetson_nano();
    let plans = experiment::paper_plans(&dev);
    let json = serde_json::to_string_pretty(&plans).unwrap();
    let restored: PlanSet = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.len(), plans.len());
    for p in plans.iter() {
        assert_eq!(restored.get(&p.model).unwrap(), p);
    }
}

#[test]
fn restored_plans_reproduce_profiled_block_times() {
    let dev = DeviceConfig::jetson_nano();
    let plans = experiment::paper_plans(&dev);
    let json = serde_json::to_string(&plans).unwrap();
    let restored: PlanSet = serde_json::from_str(&json).unwrap();

    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        let plan = restored.get(&g.name).unwrap();
        assert!(plan.is_split());
        // Re-profiling the stored cuts on a rebuilt graph reproduces the
        // stored block times bit for bit (the whole pipeline is
        // deterministic).
        let spec = SplitSpec::new(&g, plan.cuts.clone()).unwrap();
        let times = split_block_times_us(&g, &spec, &dev);
        assert_eq!(times.len(), plan.block_times_us.len());
        for (a, b) in times.iter().zip(&plan.block_times_us) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

#[test]
fn deterministic_engine_is_reproducible_from_restored_plans() {
    let dev = DeviceConfig::jetson_nano();
    let plans = experiment::paper_plans(&dev);
    let json = serde_json::to_string(&plans).unwrap();
    let restored: PlanSet = serde_json::from_str(&json).unwrap();

    let mut d1 = Deployment::new();
    d1.deploy_all(&plans);
    let mut d2 = Deployment::new();
    d2.deploy_all(&restored);

    let trace = RequestTrace::generate(Scenario::table2(2), &experiment::PAPER_MODEL_NAMES);
    let policy = Policy::Split(SplitCfg::default());
    let a = simulate(&policy, &trace.arrivals, d1.table());
    let b = simulate(&policy, &trace.arrivals, d2.table());
    assert_eq!(a.completions, b.completions);
}

#[test]
fn vanilla_plan_round_trip() {
    let dev = DeviceConfig::jetson_nano();
    let g = ModelId::Gpt2.build_calibrated(&dev);
    let plan = SplitPlan::vanilla(&g, &dev);
    let json = serde_json::to_string(&plan).unwrap();
    let back: SplitPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    assert!(!back.is_split());
    assert_eq!(back.block_count(), 1);
}
