//! The paper's analytical claims, checked against the real model zoo:
//! Table 1 identities, the §2.4 observations on real ResNet-50/VGG-19,
//! Eq. 1's algebra, and the §2.2 candidate-count explosion.

use split_repro::dnn_graph::SplitSpec;
use split_repro::gpu_sim::{block_time_us, op_times_us, DeviceConfig};
use split_repro::model_zoo::{profiling_models, ModelId};
use split_repro::profiler::{profile_split, sweep_one_cut};
use split_repro::split_core::analysis::monte_carlo_waiting_us;
use split_repro::split_core::{count_candidates, expected_waiting_us};

#[test]
fn table1_op_counts_exact() {
    let expect = [
        (ModelId::YoloV2, 84),
        (ModelId::GoogLeNet, 142),
        (ModelId::ResNet50, 122),
        (ModelId::Vgg19, 44),
        (ModelId::Gpt2, 2534),
    ];
    for (id, ops) in expect {
        assert_eq!(id.build().op_count(), ops, "{id:?}");
    }
}

#[test]
fn all_eleven_profiling_models_validate_and_time() {
    let dev = DeviceConfig::jetson_nano();
    for id in profiling_models() {
        let g = id.build_calibrated(&dev);
        g.validate().unwrap();
        let t = block_time_us(&g, &dev);
        assert!(t > 0.0 && t.is_finite(), "{id:?}: {t}");
        let times = op_times_us(&g, &dev);
        assert_eq!(times.len(), g.op_count());
    }
}

/// §2.4 observation 1 on the real long models: cutting in the first decile
/// of operators costs more overhead than cutting in the last decile.
#[test]
fn observation1_early_cuts_cost_more_on_real_models() {
    let dev = DeviceConfig::jetson_nano();
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        let pts = sweep_one_cut(&g, &dev, 1);
        let d = pts.len() / 10;
        let early: f64 = pts[..d].iter().map(|p| p.overhead_ratio).sum::<f64>() / d as f64;
        let late: f64 = pts[pts.len() - d..]
            .iter()
            .map(|p| p.overhead_ratio)
            .sum::<f64>()
            / d as f64;
        assert!(early > 2.0 * late, "{id:?}: early {early} vs late {late}");
    }
}

/// §2.4 observation 2 on the real long models: the evenness optimum sits
/// near, slightly before, the operator-index middle.
#[test]
fn observation2_even_cut_sits_before_middle() {
    let dev = DeviceConfig::jetson_nano();
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        let pts = sweep_one_cut(&g, &dev, 1);
        let best = pts
            .iter()
            .min_by(|a, b| a.std_us.total_cmp(&b.std_us))
            .unwrap();
        let frac = best.cuts[0] as f64 / g.op_count() as f64;
        assert!(
            (0.2..=0.55).contains(&frac),
            "{id:?}: evenness optimum at {frac:.2} of op index"
        );
        // Extremes are far worse.
        assert!(pts[0].std_us > 3.0 * best.std_us);
        assert!(pts[pts.len() - 1].std_us > 3.0 * best.std_us);
    }
}

/// Eq. 1's closed form equals the mechanism it models, on *profiled*
/// block times of the real ResNet-50 (not synthetic numbers).
#[test]
fn eq1_closed_form_matches_monte_carlo_on_real_blocks() {
    let dev = DeviceConfig::jetson_nano();
    let g = ModelId::ResNet50.build_calibrated(&dev);
    for cuts in [vec![61], vec![40, 81], vec![30, 61, 91]] {
        let spec = SplitSpec::new(&g, cuts).unwrap();
        let p = profile_split(&g, &spec, &dev);
        let exact = expected_waiting_us(&p.block_times_us);
        let mc = monte_carlo_waiting_us(&p.block_times_us, 100_000, 7);
        assert!(
            (mc - exact).abs() / exact < 0.03,
            "exact {exact} vs MC {mc}"
        );
    }
}

/// §2.2: candidate counts explode; the GA's profiled-candidate budget does
/// not.
#[test]
fn candidate_space_explodes_combinatorially() {
    // ResNet-50 (122 ops) into 3 blocks: C(121,2) = 7260.
    assert_eq!(count_candidates(122, 3), 7_260);
    // Into 5 blocks: already ~8.5M.
    assert!(count_candidates(122, 5) > 8_000_000);
    // GPT-2 (2534 ops) into 3 blocks: ~3.2M candidates from node count
    // alone — the paper's "over 80 hours of profiling" regime.
    assert!(count_candidates(2534, 3) > 3_000_000);
}
