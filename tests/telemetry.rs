//! Integration tests for the telemetry pipeline: simulate a Table 2
//! scenario under multiple policies, check the lifecycle recording's
//! invariants, export it to a Chrome/Perfetto trace, and validate the
//! JSON structure a downstream trace viewer would load — block spans,
//! preemption markers, and queue-depth counters.

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::sched::Policy;
use split_repro::split_telemetry::{trace_events, Event};
use split_repro::workload::Scenario;

fn run(policy: &Policy) -> split_repro::sched::SimResult {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    experiment::run_scenario(policy, Scenario::table2(3), &deployment)
}

/// Policies exercised by these tests: SPLIT plus one baseline, per the
/// acceptance criterion (≥ 2 policies).
fn policies() -> Vec<Policy> {
    vec![
        Policy::Split(Default::default()),
        Policy::ClockWork,
        Policy::Rta(Default::default()),
    ]
}

#[test]
fn lifecycle_recording_validates_for_each_policy() {
    for policy in policies() {
        let r = run(&policy);
        let problems = r.recorder.validate();
        assert!(
            problems.is_empty(),
            "{}: lifecycle invariants violated: {problems:?}",
            policy.name()
        );

        let n = r.completions.len();
        let arrivals = r
            .recorder
            .events()
            .filter(|e| matches!(e, Event::Arrival { .. }))
            .count();
        let completions = r
            .recorder
            .events()
            .filter(|e| matches!(e, Event::Completion { .. }))
            .count();
        assert_eq!(arrivals, n, "{}: one Arrival per request", policy.name());
        assert_eq!(
            completions,
            n,
            "{}: one Completion per request",
            policy.name()
        );
    }
}

#[test]
fn chrome_trace_json_has_spans_counters_and_markers() {
    for policy in policies() {
        let r = run(&policy);
        // Serialize and re-parse: validates the document survives the
        // same round trip a trace viewer performs.
        let text = serde_json::to_string(&trace_events(&r.recorder, policy.name()))
            .expect("trace serializes");
        let doc: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .expect("top-level traceEvents key")
            .as_array()
            .expect("traceEvents is an array");
        assert!(!events.is_empty(), "{}: empty trace", policy.name());

        let mut spans = 0usize;
        let mut counters = 0usize;
        let mut instants = 0usize;
        for e in events {
            let ph = e
                .get("ph")
                .and_then(|v| v.as_str())
                .expect("every event has a phase");
            match ph {
                "X" => {
                    spans += 1;
                    // A block span carries a label, a start, and a duration.
                    assert!(e.get("name").and_then(|v| v.as_str()).is_some());
                    assert!(e.get("ts").is_some() && e.get("dur").is_some());
                }
                "C" => counters += 1,
                "i" => instants += 1,
                _ => {}
            }
        }
        // Every request runs at least one block; queue depth is sampled at
        // every arrival and completion.
        assert!(
            spans >= r.completions.len(),
            "{}: {spans} spans for {} requests",
            policy.name(),
            r.completions.len()
        );
        assert!(
            counters >= 2 * r.completions.len(),
            "{}: too few counter samples ({counters})",
            policy.name()
        );
        // SPLIT emits a preemption-decision instant per arrival.
        if matches!(policy, Policy::Split(_)) {
            assert!(
                instants >= r.completions.len(),
                "SPLIT: expected preemption markers, got {instants}"
            );
        }
    }
}

#[test]
fn split_metrics_cover_decision_latency() {
    let r = run(&Policy::Split(Default::default()));
    let reg = r.metrics();
    let h = reg.histogram("sched.preempt.decision_ns");
    assert_eq!(h.count() as usize, r.completions.len());
    assert!(h.quantile(0.5) > 0, "decision p50 should be non-zero");
    assert!(h.quantile(0.99) >= h.quantile(0.5));
    // §3.4: preemption decisions are microsecond-scale. Allow generous
    // slack for CI noise: p99 under 1 ms.
    assert!(
        h.quantile(0.99) < 1_000_000,
        "decision p99 {} ns is not µs-scale",
        h.quantile(0.99)
    );
}

#[test]
fn written_trace_file_round_trips() {
    let r = run(&Policy::Split(Default::default()));
    let dir = std::env::temp_dir().join("split-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario3.trace.json");
    split_repro::split_telemetry::write_chrome_trace(&r.recorder, "test", &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert!(doc.get("traceEvents").is_some());
    std::fs::remove_file(&path).ok();
}
