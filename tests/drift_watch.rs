//! Acceptance tests for the streaming drift watch (DESIGN.md §15):
//! a flash crowd must be flagged within three windows of onset, the six
//! stationary Table 2 scenarios must fire nothing (zero false
//! positives), and the whole pipeline must be bit-identical across
//! thread counts.

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::sched::{simulate, Policy};
use split_repro::split_watch::WatchCfg;
use split_repro::workload::{all_scenarios, DriftProfile, RequestTrace, Scenario};

const ONSET_US: f64 = 60_000_000.0;

fn flash_crowd_trace() -> RequestTrace {
    let sc = Scenario::table2(3);
    let profile = DriftProfile::FlashCrowd {
        base_interval_us: sc.lambda_us(),
        onset_us: ONSET_US,
        surge: 8.0,
        dwell_us: 40_000_000.0,
    };
    RequestTrace::generate_drift(sc, &experiment::PAPER_MODEL_NAMES, profile)
}

#[test]
fn flash_crowd_is_flagged_within_three_windows_of_onset() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let trace = flash_crowd_trace();
    let r = simulate(
        &Policy::Split(Default::default()),
        &trace.arrivals,
        deployment.table(),
    );
    let report = r.drift(WatchCfg::default());
    assert!(report.conservation_holds(), "sample conservation broke");
    let onset_window = (ONSET_US / report.window_us) as u64;
    let first = report
        .events
        .first()
        .expect("the 8x flash crowd must fire at least one regime event");
    assert!(
        (onset_window..=onset_window + 3).contains(&first.window),
        "first regime event in window {} but onset is window {onset_window}: {}",
        first.window,
        first.render(),
    );
}

#[test]
fn stationary_table2_scenarios_fire_no_regime_events() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    for sc in all_scenarios() {
        let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);
        let r = simulate(
            &Policy::Split(Default::default()),
            &trace.arrivals,
            deployment.table(),
        );
        let report = r.drift(WatchCfg::default());
        assert!(
            report.conservation_holds(),
            "scenario {}: sample conservation broke",
            sc.index
        );
        assert!(
            report.events.is_empty(),
            "scenario {} is stationary but fired: {}",
            sc.index,
            report
                .events
                .iter()
                .map(|e| e.render())
                .collect::<Vec<_>>()
                .join("; "),
        );
    }
}

#[test]
fn drift_report_is_bit_identical_across_thread_counts() {
    let run = || {
        let dev = DeviceConfig::jetson_nano();
        let deployment = experiment::paper_deployment(&dev);
        let trace = flash_crowd_trace();
        let r = simulate(
            &Policy::Split(Default::default()),
            &trace.arrivals,
            deployment.table(),
        );
        serde_json::to_string(&r.drift(WatchCfg::default())).expect("report serializes")
    };
    let one = split_repro::rayon::with_threads(1, run);
    let four = split_repro::rayon::with_threads(4, run);
    assert_eq!(one, four, "drift report must not depend on thread count");
}
