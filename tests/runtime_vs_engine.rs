//! The two execution paths must agree: the threaded runtime (wall-clock,
//! real locks) and the deterministic policy engine serve the same trace
//! with the same plans; their QoS statistics should be close — identical
//! ordering decisions, timing differences bounded by clock compression
//! noise.

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::qos_metrics::violation_rate;
use split_repro::sched::policy::SplitCfg;
use split_repro::sched::{simulate, Policy};
use split_repro::split_runtime::{drive, Server, ServerConfig};
use split_repro::workload::{RequestTrace, Scenario};

#[test]
fn runtime_and_engine_agree_on_qos() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);

    // A short trace (compressed wall time must stay test-friendly).
    let mut sc = Scenario::table2(3);
    sc.requests = 60;
    let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);

    // Deterministic engine.
    let engine = simulate(
        &Policy::Split(SplitCfg {
            alpha: 4.0,
            elastic: None,
        }),
        &trace.arrivals,
        deployment.table(),
    );
    let engine_outcomes = engine.outcomes();

    // Threaded runtime at gentle 10x compression: blocks span milliseconds
    // of wall time, so OS scheduling noise (this may be an oversubscribed
    // host) stays small relative to the simulated quantities.
    let server = Server::start(
        deployment,
        ServerConfig {
            alpha: 4.0,
            elastic: None,
            compression: 10.0,
        },
    );
    let report = drive(&server, &trace.arrivals);
    let runtime_outcomes = report.outcomes();
    let shutdown = server.shutdown();

    assert_eq!(runtime_outcomes.len(), 60, "all requests served");
    assert_eq!(shutdown.served, 60);

    // Timing agreement is only meaningful when the host actually let the
    // driver keep pace. Under heavy co-scheduling (e.g. the whole test
    // suite running in parallel on an oversubscribed box), arrivals fire
    // late and every latency inflates; the structural assertions above
    // still hold, but comparing wall-clock-derived QoS would test the CI
    // machine, not the code.
    if report.late_fires > 5 {
        eprintln!(
            "skipping timing comparison: {} late fires (contended host)",
            report.late_fires
        );
        return;
    }

    // Mean response ratios agree within a generous tolerance (the runtime
    // pays sleep quantization on every block).
    let mean_rr = |outs: &[split_repro::qos_metrics::RequestOutcome]| {
        outs.iter().map(|o| o.response_ratio()).sum::<f64>() / outs.len() as f64
    };
    let e = mean_rr(&engine_outcomes);
    let r = mean_rr(&runtime_outcomes);
    assert!(
        (r - e).abs() / e < 1.0,
        "engine mean RR {e:.2} vs runtime {r:.2}"
    );

    // Violation rates land in the same regime.
    let ve = violation_rate(&engine_outcomes, 4.0);
    let vr = violation_rate(&runtime_outcomes, 4.0);
    assert!(
        (vr - ve).abs() < 0.25,
        "engine viol@4 {ve:.3} vs runtime {vr:.3}"
    );
}
