//! End-to-end integration: workload → offline splitting → serving policies
//! → QoS metrics, asserting the paper's headline shapes hold for the full
//! paper deployment across all six Table 2 scenarios.

use split_repro::experiment::{self, PAPER_MODEL_NAMES};
use split_repro::gpu_sim::DeviceConfig;
use split_repro::qos_metrics::{per_model_std, violation_rate, RequestOutcome};
use split_repro::sched::Policy;
use split_repro::split_runtime::Deployment;
use split_repro::workload::all_scenarios;

fn outcomes_for(policy: &Policy, deployment: &Deployment) -> Vec<Vec<RequestOutcome>> {
    all_scenarios()
        .into_iter()
        .map(|sc| experiment::scenario_outcomes(policy, sc, deployment))
        .collect()
}

#[test]
fn every_policy_serves_all_1000_requests_in_every_scenario() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    for policy in Policy::all_default() {
        for sc in all_scenarios() {
            let r = experiment::run_scenario(&policy, sc, &deployment);
            assert_eq!(
                r.completions.len(),
                1000,
                "{} scenario {}",
                policy.name(),
                sc.index
            );
            for c in &r.completions {
                assert!(c.end_us > c.arrival_us, "{:?}", c);
                assert!(
                    c.e2e_us() >= c.exec_us - 1e-6,
                    "faster than isolated execution: {c:?}"
                );
            }
        }
    }
}

/// Figure 6's shape: SPLIT has the lowest violation rate at the paper's
/// focal target α = 4 in every scenario, and stays below 10% beyond it.
#[test]
fn split_wins_violation_rate_in_every_scenario() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let policies = Policy::all_default();
    let split_outcomes = outcomes_for(&policies[0], &deployment);

    for (i, sc) in all_scenarios().iter().enumerate() {
        let split_rate = violation_rate(&split_outcomes[i], 4.0);
        assert!(
            split_rate < 0.10,
            "scenario {}: SPLIT must stay under 10% beyond α=4, got {split_rate}",
            sc.index
        );
        for baseline in &policies[1..] {
            let base = violation_rate(
                &experiment::scenario_outcomes(baseline, *sc, &deployment),
                4.0,
            );
            assert!(
                split_rate <= base + 1e-9,
                "scenario {}: SPLIT {} must not exceed {} {}",
                sc.index,
                split_rate,
                baseline.name(),
                base
            );
        }
    }
}

/// Figure 7's shape: SPLIT reduces short-model jitter versus every
/// baseline, substantially (the paper reports 46.8–69.3%).
#[test]
fn split_reduces_short_model_jitter_substantially() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let shorts = experiment::short_model_names();

    let mean_short_std = |policy: &Policy| {
        let per_scenario = outcomes_for(policy, &deployment);
        per_scenario
            .iter()
            .map(|outs| {
                let rows = per_model_std(outs);
                rows.iter()
                    .filter(|r| shorts.contains(&r.model.as_str()))
                    .map(|r| r.std_us)
                    .sum::<f64>()
                    / shorts.len() as f64
            })
            .sum::<f64>()
            / 6.0
    };

    let policies = Policy::all_default();
    let split = mean_short_std(&policies[0]);
    for baseline in &policies[1..] {
        let base = mean_short_std(baseline);
        let reduction = 1.0 - split / base;
        assert!(
            reduction > 0.30,
            "SPLIT short jitter {split} vs {} {base}: only {:.1}% reduction",
            baseline.name(),
            100.0 * reduction
        );
    }
}

/// The paper's honesty clause (§5.5): SPLIT *sacrifices* some stability of
/// the long requests it splits — their jitter under SPLIT is not the best
/// of the four systems.
#[test]
fn split_trades_some_long_model_stability() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let sc = all_scenarios()[2];
    let longs = experiment::long_model_names();

    let long_std = |policy: &Policy| {
        let outs = experiment::scenario_outcomes(policy, sc, &deployment);
        per_model_std(&outs)
            .iter()
            .filter(|r| longs.contains(&r.model.as_str()))
            .map(|r| r.std_us)
            .sum::<f64>()
            / longs.len() as f64
    };

    let policies = Policy::all_default();
    let split = long_std(&policies[0]);
    let best_baseline = policies[1..]
        .iter()
        .map(long_std)
        .fold(f64::INFINITY, f64::min);
    assert!(
        split > best_baseline * 0.8,
        "long-model jitter should show the documented trade-off: split {split}, best baseline {best_baseline}"
    );
}

/// Every model in the deployment keeps its Table 1 identity through the
/// whole pipeline.
#[test]
fn deployment_latencies_match_table1() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let expect = [10.8, 13.2, 28.35, 67.5, 20.4];
    for (name, ms) in PAPER_MODEL_NAMES.iter().zip(expect) {
        let m = deployment.table().get(name);
        assert!(
            (m.exec_us / 1e3 - ms).abs() < 1e-6,
            "{name}: {} vs {ms}",
            m.exec_us / 1e3
        );
    }
}
