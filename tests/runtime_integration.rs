//! Integration of the threaded runtime (Figure 4) with the real paper
//! deployment: the online system must exhibit the same qualitative
//! behaviour as the deterministic policy engine.

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::split_runtime::{RequestStatus, Server, ServerConfig};
use std::time::Duration;

fn server(compression: f64) -> Server {
    let dev = DeviceConfig::jetson_nano();
    Server::start(
        experiment::paper_deployment(&dev),
        ServerConfig {
            alpha: 4.0,
            elastic: None,
            compression,
        },
    )
}

#[test]
fn paper_deployment_serves_all_five_models() {
    let server = server(500.0);
    let client = server.client();
    let rxs: Vec<_> = experiment::PAPER_MODEL_NAMES
        .iter()
        .map(|m| client.infer(*m))
        .collect();
    for (rx, name) in rxs.into_iter().zip(experiment::PAPER_MODEL_NAMES) {
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, RequestStatus::Completed, "{name}");
        assert_eq!(r.model, name);
        assert!(r.e2e_us() > 0.0);
    }
    let report = server.shutdown();
    assert_eq!(report.served, 5);
}

#[test]
fn long_models_run_their_ga_blocks() {
    let server = server(500.0);
    let client = server.client();
    let resnet = client
        .infer("resnet50")
        .recv_timeout(Duration::from_secs(10))
        .unwrap();
    let vgg = client
        .infer("vgg19")
        .recv_timeout(Duration::from_secs(10))
        .unwrap();
    assert!(
        resnet.blocks_run >= 2,
        "resnet50 ran {} blocks",
        resnet.blocks_run
    );
    assert!(vgg.blocks_run >= 2, "vgg19 ran {} blocks", vgg.blocks_run);
    server.shutdown();
}

#[test]
fn sustained_mixed_load_decision_latency_is_microsecond_scale() {
    let server = server(2_000.0);
    let client = server.client();
    let mut rxs = Vec::new();
    for i in 0..150 {
        let model = experiment::PAPER_MODEL_NAMES[i % 5];
        rxs.push(client.infer(model));
        if i % 10 == 9 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    for rx in rxs {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap().status,
            RequestStatus::Completed
        );
    }
    let report = server.shutdown();
    assert_eq!(report.served, 150);
    assert_eq!(report.decisions, 150);
    // §3.4: microsecond-scale scheduling (generous bound for CI noise).
    assert!(
        report.mean_decision_ns < 500_000.0,
        "mean decision {} ns",
        report.mean_decision_ns
    );
}

#[test]
fn threaded_runtime_preserves_same_task_fifo() {
    // Same-task requests submitted in order must complete in order, no
    // matter how the scheduler interleaves other work.
    let server = server(1_000.0);
    let client = server.client();
    let mut rxs = Vec::new();
    for i in 0..30 {
        // Interleave a long stream with the observed yolo stream.
        if i % 3 == 0 {
            let _ = client.infer("vgg19");
        }
        rxs.push(client.infer("yolov2"));
    }
    let replies: Vec<_> = rxs
        .into_iter()
        .map(|rx| rx.recv_timeout(Duration::from_secs(30)).unwrap())
        .collect();
    for w in replies.windows(2) {
        assert!(
            w[0].end_us <= w[1].end_us + 1e-6,
            "yolo requests completed out of order: {} then {}",
            w[0].end_us,
            w[1].end_us
        );
    }
    server.shutdown();
}
