//! Span-tree determinism across worker-thread counts.
//!
//! Span ids are a pure function of (request id, phase, occurrence) —
//! never a shared counter — so the forest rebuilt from a simulation
//! must be bit-identical whether the pool ran one worker or four.
//! Timestamps are compared via `f64::to_bits`, i.e. exact equality,
//! not tolerance.

use split_repro::experiment;
use split_repro::gpu_sim::DeviceConfig;
use split_repro::rayon;
use split_repro::sched::Policy;
use split_repro::split_obs::{Span, SpanKind, ROOT_SPAN_ID};
use split_repro::workload::Scenario;

fn spans_with_threads(threads: usize) -> Vec<Span> {
    rayon::with_threads(threads, || {
        let dev = DeviceConfig::jetson_nano();
        let deployment = experiment::paper_deployment(&dev);
        let result = experiment::run_scenario(
            &Policy::Split(Default::default()),
            Scenario::table2(3),
            &deployment,
        );
        result.spans()
    })
}

/// Two span forests are bit-identical: same order, same ids, same
/// phases, and timestamps equal down to the last mantissa bit.
fn assert_bit_identical(a: &[Span], b: &[Span]) {
    assert_eq!(a.len(), b.len(), "span counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.ctx, y.ctx, "span context differs");
        assert_eq!(x.kind, y.kind, "span kind differs for {:?}", x.ctx);
        assert_eq!(x.model, y.model, "model differs for {:?}", x.ctx);
        assert_eq!(
            x.start_us.to_bits(),
            y.start_us.to_bits(),
            "start_us bits differ for {:?}",
            x.ctx
        );
        assert_eq!(
            x.end_us.to_bits(),
            y.end_us.to_bits(),
            "end_us bits differ for {:?}",
            x.ctx
        );
    }
}

#[test]
fn span_trees_are_bit_identical_across_thread_counts() {
    let single = spans_with_threads(1);
    let quad = spans_with_threads(4);
    assert!(!single.is_empty(), "scenario produced no spans");
    assert_bit_identical(&single, &quad);
}

#[test]
fn span_ids_derive_from_phase_not_construction_order() {
    let spans = spans_with_threads(1);
    for sp in &spans {
        match sp.kind {
            SpanKind::Request => {
                assert_eq!(sp.ctx.span_id, ROOT_SPAN_ID);
                assert_eq!(sp.ctx.parent, None);
            }
            SpanKind::Block { index, .. } => {
                // Phase code 2 in the high word, block index low.
                assert_eq!(
                    sp.ctx.span_id,
                    (3u64 << 32) | index as u64,
                    "block id must encode its index"
                );
            }
            _ => assert!(sp.ctx.span_id > u32::MAX as u64, "phase-coded ids only"),
        }
        if sp.kind != SpanKind::Request {
            assert_eq!(sp.ctx.parent, Some(ROOT_SPAN_ID));
        }
    }
    // Ids are unique within every trace.
    let mut per_trace: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        std::collections::HashMap::new();
    for sp in &spans {
        assert!(
            per_trace
                .entry(sp.ctx.trace_id)
                .or_default()
                .insert(sp.ctx.span_id),
            "duplicate span id {} in trace {}",
            sp.ctx.span_id,
            sp.ctx.trace_id
        );
    }
}
