//! Cross-thread-count determinism of the sharded fleet engine: the
//! cluster schedule, the merged telemetry registry, the merged latency
//! sketches, and the route report must be bit-identical whether the
//! per-lane simulations ran on one pool worker or four.
//!
//! The argument (DESIGN.md §17): routing is a sequential pass over the
//! time-ordered trace, the parallel map collects shard results in lane
//! order regardless of completion order, and every merge is either
//! order-independent (counters add, gauges take maxima, sketches merge
//! commutatively) or folds in fixed lane order (the digest).

use split_repro::experiment;
use split_repro::gpu_sim::{DeviceConfig, FleetSpec};
use split_repro::sched::Policy;
use split_repro::split_cluster::{
    offered_interval_us, simulate_fleet, ClusterResult, Fleet, Placement, RouteCfg, RoutePolicy,
};
use split_repro::split_telemetry::MetricsSnapshot;
use split_repro::workload::{RequestTrace, Scenario};

/// Drop the wall-clock diagnostics (`*_ns` histograms such as
/// `sched.preempt.decision_ns` measure host nanoseconds, not simulated
/// time) — the determinism contract covers every simulated-time metric.
fn simulated(mut snap: MetricsSnapshot) -> MetricsSnapshot {
    snap.entries.retain(|e| !e.name.ends_with("_ns"));
    snap
}

fn run(threads: usize, policy: RoutePolicy) -> ClusterResult {
    rayon::with_threads(threads, || {
        let dev = DeviceConfig::jetson_nano();
        let deployment = experiment::paper_deployment(&dev);
        let table = deployment.table();
        let fleet = Fleet::new(&FleetSpec::heterogeneous(8), table);
        let placement = Placement::full(&fleet, table);
        let interval = offered_interval_us(table, &fleet, 0.7);
        let trace = RequestTrace::generate(
            Scenario::fleet(interval, 4_000),
            &experiment::PAPER_MODEL_NAMES,
        );
        simulate_fleet(
            &Policy::Split(Default::default()),
            &trace.arrivals,
            &fleet,
            &placement,
            &RouteCfg {
                policy,
                seed: 0xD15C,
            },
        )
    })
}

#[test]
fn cluster_run_is_bit_identical_across_thread_counts() {
    for policy in RoutePolicy::all() {
        let one = run(1, policy);
        let four = run(4, policy);

        assert_eq!(
            one.digest(),
            four.digest(),
            "{}: cluster schedule digest differs between 1 and 4 workers",
            policy.name()
        );
        for (a, b) in one.shards.iter().zip(&four.shards) {
            assert_eq!(
                (a.lane, a.digest),
                (b.lane, b.digest),
                "{}: shard digest differs on lane {}",
                policy.name(),
                a.lane
            );
        }
        assert_eq!(
            one.outcomes(),
            four.outcomes(),
            "{}: request outcomes differ",
            policy.name()
        );
        assert_eq!(
            one.route,
            four.route,
            "{}: route report differs",
            policy.name()
        );
        assert_eq!(
            simulated(one.merged_metrics().snapshot()),
            simulated(four.merged_metrics().snapshot()),
            "{}: merged telemetry registry differs",
            policy.name()
        );
        assert_eq!(
            one.merged_sketches(),
            four.merged_sketches(),
            "{}: merged latency sketches differ",
            policy.name()
        );
    }
}

#[test]
fn repeated_runs_at_the_same_width_are_identical() {
    // Same thread count twice: catches nondeterminism that happens to
    // differ between widths only through e.g. allocator state.
    let a = run(4, RoutePolicy::PowerOfTwoChoices);
    let b = run(4, RoutePolicy::PowerOfTwoChoices);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.route, b.route);
}
